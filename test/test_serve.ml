(* The compile daemon: protocol hygiene under malformed input,
   bit-identity of served results against direct pipeline compiles
   (cold, warm, concurrent), domain-safety of the shared hot cache,
   backpressure, queue-deadline timeouts, graceful drain, and file
   descriptor accounting. *)

module P = Emsc_serve.Protocol
module Server = Emsc_serve.Server
module Client = Emsc_serve.Client
module J = Emsc_obs.Json
open Emsc_driver

let matmul_text n =
  Printf.sprintf
    "array A[%d][%d];\narray B[%d][%d];\narray C[%d][%d];\n\
     for (i = 0; i <= %d; i++) {\n\
    \  for (j = 0; j <= %d; j++) {\n\
    \    for (k = 0; k <= %d; k++) {\n\
    \      C[i][j] += A[i][k] * B[k][j];\n\
    \    }\n\
    \  }\n\
     }\n"
    n n n n n n (n - 1) (n - 1) (n - 1)

let tiled_options =
  { P.default_options with o_block = [ 8; 8; 0 ]; o_mem = [ 8; 8; 8 ] }

let req ?timeout_ms ?(id = "t") op = { P.req_id = id; op; timeout_ms }

let compile_req ?timeout_ms ?id ?(options = P.default_options) name text =
  req ?timeout_ms ?id (P.Compile { name; text; options })

(* --- protocol parsing -------------------------------------------------- *)

let reject_code = function
  | Error (r : P.reject) -> r.P.code
  | Ok (r : P.request) -> "accepted:" ^ P.op_name r.P.op

let test_parse_roundtrip () =
  let original =
    compile_req ~id:"42" ~options:tiled_options ~timeout_ms:250.0 "mm"
      (matmul_text 16)
  in
  match P.parse_request (P.request_line original) with
  | Error r -> Alcotest.failf "round-trip rejected: %s" r.P.message
  | Ok parsed ->
    Alcotest.(check string) "id" "42" parsed.P.req_id;
    Alcotest.(check (option (float 0.0))) "timeout" (Some 250.0)
      parsed.P.timeout_ms;
    (match parsed.P.op with
     | P.Compile { name; text; options } ->
       Alcotest.(check string) "name" "mm" name;
       Alcotest.(check string) "text" (matmul_text 16) text;
       Alcotest.(check (list int)) "block" [ 8; 8; 0 ] options.P.o_block;
       Alcotest.(check (list int)) "mem" [ 8; 8; 8 ] options.P.o_mem
     | _ -> Alcotest.fail "expected a compile op")

let test_parse_rejects () =
  List.iter
    (fun (line, code) ->
      Alcotest.(check string) ("reject " ^ code) code
        (reject_code (P.parse_request line)))
    [ ("{\"v\":", "bad_json");
      ("not json at all", "bad_json");
      ("[1,2,3]", "bad_version");
      ("{\"id\":\"1\",\"op\":\"status\"}", "bad_version");
      ("{\"v\":\"emsc-serve/0\",\"op\":\"status\"}", "bad_version");
      ("{\"v\":\"emsc-serve/1\"}", "bad_request");
      ("{\"v\":\"emsc-serve/1\",\"op\":\"frobnicate\"}", "bad_request");
      ("{\"v\":\"emsc-serve/1\",\"op\":\"compile\"}", "bad_request");
      ( "{\"v\":\"emsc-serve/1\",\"op\":\"compile\",\"text\":\"x\",\
         \"options\":{\"block\":[1,\"a\"]}}",
        "bad_request" );
      ("{\"v\":\"emsc-serve/1\",\"op\":\"status\"}", "accepted:status");
      ("{\"v\":\"emsc-serve/1\",\"op\":\"shutdown\"}", "accepted:shutdown");
      ("{\"v\":\"emsc-serve/1\",\"op\":\"check\"}", "accepted:check") ]

(* --- shared hot cache under domains ------------------------------------ *)

let test_cache_hammer_exact_totals () =
  let cache = Cache.in_memory () in
  let domains = 4 and per_domain = 400 and keyspace = 16 in
  let payload k = String.make 4096 (Char.chr (Char.code 'a' + k)) in
  let torn = Atomic.make 0 in
  let work d =
    for i = 0 to per_domain - 1 do
      let k = (i + d) mod keyspace in
      let v, _cached =
        Cache.memo cache ~key:(Printf.sprintf "k%02d" k)
          (fun () -> payload k)
      in
      (* a torn entry would mix characters or lengths *)
      if String.length v <> 4096
         || v.[0] <> Char.chr (Char.code 'a' + k)
         || v.[4095] <> v.[0]
      then Atomic.incr torn
    done
  in
  let doms = List.init domains (fun d -> Domain.spawn (fun () -> work d)) in
  List.iter Domain.join doms;
  Alcotest.(check int) "no torn entries" 0 (Atomic.get torn);
  (* exact accounting: every lookup is a hit or a miss, every miss
     stores, and no update is lost to a racing read-modify-write *)
  let lookups = domains * per_domain in
  Alcotest.(check int) "hits + misses = lookups" lookups
    (Cache.hits cache + Cache.misses cache);
  Alcotest.(check int) "every miss stored" (Cache.misses cache)
    (Cache.stores cache);
  (* concurrent first sights of one key may each compute (benign
     duplication), but misses can never exceed total lookups nor fall
     below the keyspace *)
  Alcotest.(check bool) "at least one miss per key" true
    (Cache.misses cache >= keyspace);
  Alcotest.(check int) "no disk layer in play" 0 (Cache.disk_hits cache);
  Alcotest.(check int) "hot hits account for all hits" (Cache.hits cache)
    (Cache.hot_hits cache)

let test_capped_cache_hammer_stays_capped () =
  let cap = 8 in
  let cache = Cache.in_memory ~max_entries:cap () in
  let doms =
    List.init 4 (fun d ->
      Domain.spawn (fun () ->
        for i = 0 to 299 do
          let k = (i + (d * 7)) mod 32 in
          ignore
            (Cache.memo cache ~key:(string_of_int k) (fun () -> k * k))
        done))
  in
  List.iter Domain.join doms;
  Alcotest.(check bool) "capped after concurrent churn" true
    (Cache.mem_entries cache <= cap);
  Alcotest.(check int) "hits + misses = lookups" (4 * 300)
    (Cache.hits cache + Cache.misses cache);
  Alcotest.(check bool) "evictions happened" true (Cache.evictions cache > 0)

(* --- in-process daemon harness ----------------------------------------- *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?workers ?queue_capacity ?default_timeout_ms ?max_line_bytes
    ?(cache = Cache.in_memory ()) f =
  let sock = fresh_sock () in
  let cfg =
    Server.config ?workers ?queue_capacity ?default_timeout_ms
      ?max_line_bytes ~cache (`Unix sock)
  in
  let srv = Domain.spawn (fun () -> Server.run cfg) in
  let shutdown () =
    match
      Client.once ~retries:3 ~retry_delay_s:0.05 (`Unix sock)
        (req ~id:"bye" P.Shutdown)
    with
    | Ok _ | Error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown ();
      ignore (Domain.join srv : Server.stats))
    (fun () -> f (`Unix sock))

let roundtrip_ok conn r =
  match Client.roundtrip conn r with
  | Error m -> Alcotest.failf "transport: %s" m
  | Ok resp ->
    if not resp.Client.ok then
      Alcotest.failf "request %s rejected: %s" r.P.req_id
        (match resp.Client.error with
         | Some e -> e.P.code ^ ": " ^ e.P.message
         | None -> "?");
    resp

let roundtrip_of_recv conn =
  match Client.recv_line conn with
  | Error m -> Alcotest.failf "transport: %s" m
  | Ok raw ->
    (match Client.parse_response raw with
     | Ok r -> r
     | Error m -> Alcotest.failf "bad response: %s" m)

let result_string resp =
  match resp.Client.result with
  | Some r -> J.to_string r
  | None -> Alcotest.fail "ok response without result"

(* what the daemon must be bit-identical to: a direct Pipeline.compile
   of the same job, serialized by the same deterministic encoder *)
let direct_result ?(options = P.default_options) ~op name text =
  match
    Server.job_of_request ~default_machine:"gtx8800" ~name ~text options
  with
  | Error r -> Alcotest.failf "job_of_request: %s" r.P.message
  | Ok (jb, capacity_words) ->
    (match Pipeline.compile ~cache:Cache.off jb with
     | Error e -> Alcotest.failf "direct compile: %s" (Frontend.error_message e)
     | Ok c ->
       J.to_string
         (match op with
          | `Compile -> P.compile_result ~capacity_words c
          | `Analyze -> P.analyze_result ~capacity_words c))

(* --- end-to-end bit-identity ------------------------------------------- *)

let server_field resp name =
  match resp.Client.server with
  | Some s -> J.member name s
  | None -> None

let int_field j = match j with Some (J.Int i) -> i | _ -> -1

let test_served_compile_bit_identical () =
  with_server ~workers:2 @@ fun addr ->
  match Client.connect addr with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    let text = matmul_text 16 in
    let want_tiled =
      direct_result ~options:tiled_options ~op:`Compile "mm" text
    in
    let want_plain = direct_result ~op:`Compile "mm" text in
    let want_analyze = direct_result ~op:`Analyze "mm" text in
    (* cold *)
    let cold =
      roundtrip_ok conn (compile_req ~id:"c1" ~options:tiled_options "mm" text)
    in
    Alcotest.(check string) "cold tiled result" want_tiled (result_string cold);
    Alcotest.(check int) "cold misses" 0
      (int_field (server_field cold "cache_hits"));
    (* warm: same job through the hot cache, still bit-identical *)
    let warm =
      roundtrip_ok conn (compile_req ~id:"c2" ~options:tiled_options "mm" text)
    in
    Alcotest.(check string) "warm result identical" want_tiled
      (result_string warm);
    Alcotest.(check bool) "warm run hit the cache" true
      (int_field (server_field warm "cache_hits") > 0);
    Alcotest.(check int) "warm run missed nothing" 0
      (int_field (server_field warm "cache_misses"));
    (* untiled compile and analyze *)
    let plain = roundtrip_ok conn (compile_req ~id:"c3" "mm" text) in
    Alcotest.(check string) "untiled result" want_plain (result_string plain);
    let analyze =
      roundtrip_ok conn
        (req ~id:"c4"
           (P.Analyze { name = "mm"; text; options = P.default_options }))
    in
    Alcotest.(check string) "analyze result" want_analyze
      (result_string analyze)

let test_concurrent_clients_bit_identical () =
  with_server ~workers:3 @@ fun addr ->
  let sources = List.init 4 (fun i -> (Printf.sprintf "mm%d" i, 12 + (4 * i))) in
  let wants =
    List.map
      (fun (name, n) ->
        ( name,
          direct_result ~options:tiled_options ~op:`Compile name
            (matmul_text n) ))
      sources
  in
  let client ci =
    match Client.connect addr with
    | Error m -> failwith m
    | Ok conn ->
      Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
      List.map
        (fun (name, n) ->
          let r =
            roundtrip_ok conn
              (compile_req
                 ~id:(Printf.sprintf "cl%d-%s" ci name)
                 ~options:tiled_options name (matmul_text n))
          in
          (name, result_string r))
        sources
  in
  let doms = List.init 4 (fun ci -> Domain.spawn (fun () -> client ci)) in
  let all = List.concat_map Domain.join doms in
  Alcotest.(check int) "sixteen responses" 16 (List.length all);
  List.iter
    (fun (name, got) ->
      let want = List.assoc name wants in
      Alcotest.(check string) ("concurrent " ^ name) want got)
    all

(* --- protocol fuzz over the wire --------------------------------------- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let expect_error_code conn ~code line =
  Client.send_line conn line;
  match Client.recv_line conn with
  | Error m -> Alcotest.failf "daemon dropped the connection: %s" m
  | Ok raw ->
    (match Client.parse_response raw with
     | Error m -> Alcotest.failf "unparseable response: %s" m
     | Ok resp ->
       Alcotest.(check bool) "rejected" false resp.Client.ok;
       (match resp.Client.error with
        | Some r -> Alcotest.(check string) ("code for " ^ code) code r.P.code
        | None -> Alcotest.fail "reject without error object"))

let test_malformed_requests_rejected_in_band () =
  with_server ~workers:1 ~max_line_bytes:4096 @@ fun addr ->
  match Client.connect addr with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    expect_error_code conn ~code:"bad_json" "{\"v\":\"emsc-serve/1\",";
    expect_error_code conn ~code:"bad_json" "garbage";
    expect_error_code conn ~code:"bad_version"
      "{\"v\":\"emsc-serve/9\",\"id\":\"x\",\"op\":\"status\"}";
    expect_error_code conn ~code:"bad_request"
      "{\"v\":\"emsc-serve/1\",\"op\":\"launch_missiles\"}";
    (* the connection survived four malformed lines: a well-formed
       status on the same connection still answers *)
    let ok = roundtrip_ok conn (req ~id:"alive" P.Status) in
    Alcotest.(check string) "id echoed" "alive" ok.Client.resp_id

let test_oversized_line_rejected_and_no_fd_leak () =
  with_server ~workers:1 ~max_line_bytes:1024 @@ fun addr ->
  let baseline = count_fds () in
  for _round = 1 to 5 do
    match Client.connect addr with
    | Error m -> Alcotest.failf "connect: %s" m
    | Ok conn ->
      Client.send_line conn (String.make 5000 'x');
      (match Client.recv_line conn with
       | Ok raw ->
         (match Client.parse_response raw with
          | Ok resp ->
            Alcotest.(check bool) "oversized rejected" false resp.Client.ok;
            (match resp.Client.error with
             | Some r ->
               Alcotest.(check string) "code" "oversized_line" r.P.code
             | None -> Alcotest.fail "reject without error object")
          | Error m -> Alcotest.failf "unparseable reject: %s" m)
       | Error _ ->
         (* daemon may close before the reject is read; the required
            property is that it neither crashed nor leaked — checked
            below by serving again and counting descriptors *)
         ());
      Client.close conn
  done;
  (* daemon still alive *)
  (match Client.once ~retries:3 ~retry_delay_s:0.05 addr (req P.Status) with
   | Ok resp -> Alcotest.(check bool) "daemon survives" true resp.Client.ok
   | Error m -> Alcotest.failf "daemon died after oversized lines: %s" m);
  (* closed connections must release their descriptors; allow slack
     for the transient status connection above *)
  let settle = ref 0 in
  while count_fds () > baseline && !settle < 50 do
    incr settle;
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "no fd leak" true (count_fds () <= baseline)

(* --- backpressure and timeouts ----------------------------------------- *)

let test_queue_full_backpressure () =
  with_server ~workers:1 ~queue_capacity:1 @@ fun addr ->
  match Client.connect addr with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    let n = 12 in
    (* one burst write: the event loop ingests all lines in one or two
       reads, far faster than the single worker drains them *)
    for i = 0 to n - 1 do
      Client.send_line conn
        (P.request_line
           (compile_req ~id:(string_of_int i) ~options:tiled_options "mm"
              (matmul_text 16)))
    done;
    let codes = ref [] in
    for _ = 1 to n do
      match Client.recv_line conn with
      | Error m -> Alcotest.failf "lost a response: %s" m
      | Ok raw ->
        (match Client.parse_response raw with
         | Error m -> Alcotest.failf "bad response: %s" m
         | Ok resp ->
           let code =
             if resp.Client.ok then "ok"
             else
               match resp.Client.error with
               | Some r -> r.P.code
               | None -> "?"
           in
           codes := code :: !codes)
    done;
    let count c = List.length (List.filter (( = ) c) !codes) in
    Alcotest.(check int) "every request answered" n (List.length !codes);
    Alcotest.(check bool) "some compiles succeeded" true (count "ok" >= 1);
    Alcotest.(check bool) "burst past the bound is shed" true
      (count "queue_full" >= 1);
    Alcotest.(check int) "nothing but ok/queue_full" n
      (count "ok" + count "queue_full")

let test_queue_deadline_timeout () =
  with_server ~workers:1 @@ fun addr ->
  match Client.connect addr with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    (* request 1 occupies the only worker for many milliseconds; the
       rest carry microscopic deadlines, so the worker finds each of
       them already expired when it finally pops them *)
    Client.send_line conn
      (P.request_line
         (compile_req ~id:"slow" ~options:tiled_options "mm" (matmul_text 24)));
    for i = 1 to 3 do
      Client.send_line conn
        (P.request_line
           (compile_req ~id:(Printf.sprintf "late%d" i) ~timeout_ms:0.01 "mm"
              (matmul_text 24)))
    done;
    let first = roundtrip_of_recv conn in
    Alcotest.(check bool) "head of line compiles" true first.Client.ok;
    for i = 1 to 3 do
      let r = roundtrip_of_recv conn in
      Alcotest.(check bool) (Printf.sprintf "late%d rejected" i) false
        r.Client.ok;
      match r.Client.error with
      | Some e -> Alcotest.(check string) "code" "timeout" e.P.code
      | None -> Alcotest.fail "timeout without error object"
    done

(* --- status and graceful drain ----------------------------------------- *)

let test_status_and_drain () =
  let cache = Cache.in_memory ~max_entries:64 () in
  let sock = fresh_sock () in
  let cfg = Server.config ~workers:2 ~cache (`Unix sock) in
  let srv = Domain.spawn (fun () -> Server.run cfg) in
  let addr = `Unix sock in
  (match Client.connect addr with
   | Error m -> Alcotest.failf "connect: %s" m
   | Ok conn ->
     let (_ : Client.response) =
       roundtrip_ok conn (compile_req ~id:"w" "mm" (matmul_text 16))
     in
     let st = roundtrip_ok conn (req ~id:"st" P.Status) in
     let field n =
       match st.Client.result with Some r -> J.member n r | None -> None
     in
     Alcotest.(check int) "workers reported" 2 (int_field (field "workers"));
     Alcotest.(check bool) "not draining" true
       (field "draining" = Some (J.Bool false));
     Alcotest.(check bool) "cache stats embedded" true
       (match field "cache" with Some (J.Obj _) -> true | _ -> false);
     let bye = roundtrip_ok conn (req ~id:"bye" P.Shutdown) in
     Alcotest.(check bool) "drain acknowledged" true
       (match bye.Client.result with
        | Some r -> J.member "draining" r = Some (J.Bool true)
        | None -> false);
     Client.close conn);
  let stats = Domain.join srv in
  Alcotest.(check bool) "served compile+status+shutdown" true
    (stats.Server.served >= 3);
  (* after drain the daemon rejects nothing silently: the socket is
     gone from the filesystem *)
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

let test_draining_rejects_new_work () =
  let sock = fresh_sock () in
  let cfg = Server.config ~workers:1 (`Unix sock) in
  let srv = Domain.spawn (fun () -> Server.run cfg) in
  (match Client.connect (`Unix sock) with
   | Error m -> Alcotest.failf "connect: %s" m
   | Ok conn ->
     (* shutdown and new work pipelined on one connection: the work
        arrives after the drain began and must be turned away with a
        typed reject, not dropped on the floor *)
     Client.send_line conn (P.request_line (req ~id:"bye" P.Shutdown));
     Client.send_line conn
       (P.request_line (compile_req ~id:"late" "mm" (matmul_text 16)));
     let bye = roundtrip_of_recv conn in
     Alcotest.(check bool) "shutdown ok" true bye.Client.ok;
     let late = roundtrip_of_recv conn in
     Alcotest.(check bool) "late work rejected" false late.Client.ok;
     (match late.Client.error with
      | Some r -> Alcotest.(check string) "code" "draining" r.P.code
      | None -> Alcotest.fail "reject without error object");
     Client.close conn);
  ignore (Domain.join srv : Server.stats)

(* --- latency metrics --------------------------------------------------- *)

let test_request_metrics_recorded () =
  Emsc_obs.Metrics.reset ();
  Emsc_obs.Metrics.enable ();
  let finally () =
    Emsc_obs.Metrics.disable ();
    Emsc_obs.Metrics.reset ()
  in
  Fun.protect ~finally @@ fun () ->
  with_server ~workers:1 @@ fun addr ->
  (match Client.connect addr with
   | Error m -> Alcotest.failf "connect: %s" m
   | Ok conn ->
     for i = 1 to 5 do
       ignore
         (roundtrip_ok conn
            (compile_req ~id:(string_of_int i) "mm" (matmul_text 16))
          : Client.response)
     done;
     Client.close conn);
  let snap = Emsc_obs.Metrics.snapshot () in
  let histogram name =
    List.find_map
      (fun (s : Emsc_obs.Metrics.sample) ->
        if s.Emsc_obs.Metrics.m_name = name then
          match s.Emsc_obs.Metrics.m_value with
          | Emsc_obs.Metrics.Histogram h -> Some (s.Emsc_obs.Metrics.m_value, h.count)
          | _ -> None
        else None)
      snap.Emsc_obs.Metrics.samples
  in
  (match histogram "serve.queue_ms" with
   | Some (_, count) -> Alcotest.(check int) "queue_ms observations" 5 count
   | None -> Alcotest.fail "no serve.queue_ms histogram");
  match histogram "serve.request_ms" with
  | Some (v, count) ->
    Alcotest.(check int) "request_ms observations" 5 count;
    (* the same log-scale histograms the bench quantile reader uses *)
    (match Emsc_obs.Metrics.quantile v 0.95 with
     | Some q -> Alcotest.(check bool) "p95 is positive" true (q > 0.0)
     | None -> Alcotest.fail "no p95 from the histogram")
  | None -> Alcotest.fail "no serve.request_ms histogram"

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "request round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "typed rejects" `Quick test_parse_rejects ] );
      ( "hot-cache",
        [ Alcotest.test_case "4-domain hammer: exact totals, no tearing"
            `Quick test_cache_hammer_exact_totals;
          Alcotest.test_case "capped hammer stays capped" `Quick
            test_capped_cache_hammer_stays_capped ] );
      ( "bit-identity",
        [ Alcotest.test_case "cold and warm equal direct compile" `Slow
            test_served_compile_bit_identical;
          Alcotest.test_case "4 concurrent clients equal direct compile"
            `Slow test_concurrent_clients_bit_identical ] );
      ( "fuzz",
        [ Alcotest.test_case "malformed lines rejected in-band" `Quick
            test_malformed_requests_rejected_in_band;
          Alcotest.test_case "oversized line rejected, no fd leak" `Slow
            test_oversized_line_rejected_and_no_fd_leak ] );
      ( "load",
        [ Alcotest.test_case "queue_full backpressure" `Slow
            test_queue_full_backpressure;
          Alcotest.test_case "queue-deadline timeout" `Slow
            test_queue_deadline_timeout ] );
      ( "lifecycle",
        [ Alcotest.test_case "status and graceful drain" `Quick
            test_status_and_drain;
          Alcotest.test_case "draining rejects new work" `Quick
            test_draining_rejects_new_work ] );
      ( "metrics",
        [ Alcotest.test_case "latency histograms recorded" `Quick
            test_request_metrics_recorded ] ) ]

(* Declarative machine-hierarchy tests: the gtx8800 built-in must be
   bit-identical to the legacy 2-level Config record through every
   consumer (projection, launch breakdowns on the whole kernel suite,
   CPU cache timing), the JSON description files must round-trip and
   match the built-ins exactly, and placement must degenerate to the
   legacy capacity rule on 2-level machines. *)

open Emsc_machine
open Emsc_kernels
open Emsc_driver

module H = Hierarchy
module P = Placement
module J = Emsc_obs.Json

let machines_dir = "../examples/machines"

(* --- projection: gtx8800 hierarchy = legacy record, field by field --- *)

let test_to_gpu_matches_legacy () =
  let g = H.to_gpu_exn H.gtx8800 and l = Config.gtx8800 in
  Alcotest.(check int) "num_mimd" l.Config.num_mimd g.Config.num_mimd;
  Alcotest.(check int) "simd_per_mimd" l.Config.simd_per_mimd
    g.Config.simd_per_mimd;
  Alcotest.(check int) "warp_size" l.Config.warp_size g.Config.warp_size;
  Alcotest.(check int) "smem_bytes" l.Config.smem_bytes g.Config.smem_bytes;
  Alcotest.(check int) "word_bytes" l.Config.word_bytes g.Config.word_bytes;
  Alcotest.(check (float 0.0)) "clock_mhz" l.Config.clock_mhz
    g.Config.clock_mhz;
  Alcotest.(check int) "max_blocks_per_mimd" l.Config.max_blocks_per_mimd
    g.Config.max_blocks_per_mimd;
  Alcotest.(check (float 0.0)) "flop_cycles" l.Config.flop_cycles
    g.Config.flop_cycles;
  Alcotest.(check (float 0.0)) "smem_access_cycles"
    l.Config.smem_access_cycles g.Config.smem_access_cycles;
  Alcotest.(check (float 0.0)) "global_latency" l.Config.global_latency
    g.Config.global_latency;
  Alcotest.(check (float 0.0)) "global_bw_words_per_cycle"
    l.Config.global_bw_words_per_cycle g.Config.global_bw_words_per_cycle;
  Alcotest.(check int) "coalesce_width" l.Config.coalesce_width
    g.Config.coalesce_width;
  Alcotest.(check (float 0.0)) "sync_cycles" l.Config.sync_cycles
    g.Config.sync_cycles;
  Alcotest.(check (float 0.0)) "global_sync_base" l.Config.global_sync_base
    g.Config.global_sync_base;
  Alcotest.(check (float 0.0)) "global_sync_per_block"
    l.Config.global_sync_per_block g.Config.global_sync_per_block;
  Alcotest.(check (float 0.0)) "launch_overhead_cycles"
    l.Config.launch_overhead_cycles g.Config.launch_overhead_cycles

(* --- golden: launch breakdowns bit-for-bit on every suite kernel ----- *)

let check_breakdown name (a : Timing.breakdown) (b : Timing.breakdown) =
  let f field va vb =
    Alcotest.(check (float 0.0)) (name ^ " " ^ field) va vb
  in
  Alcotest.(check int) (name ^ " occ") a.Timing.occ b.Timing.occ;
  f "blocks_per_mp" a.Timing.blocks_per_mp b.Timing.blocks_per_mp;
  f "warps_in_flight" a.Timing.warps_in_flight b.Timing.warps_in_flight;
  f "pipeline_eff" a.Timing.pipeline_eff b.Timing.pipeline_eff;
  f "t_comp" a.Timing.t_comp b.Timing.t_comp;
  f "t_bw" a.Timing.t_bw b.Timing.t_bw;
  f "t_lat" a.Timing.t_lat b.Timing.t_lat;
  f "t_sync" a.Timing.t_sync b.Timing.t_sync;
  f "t_fence" a.Timing.t_fence b.Timing.t_fence;
  f "t_block" a.Timing.t_block b.Timing.t_block;
  f "global_sync_cycles" a.Timing.global_sync_cycles
    b.Timing.global_sync_cycles;
  f "launch_cycles" a.Timing.launch_cycles b.Timing.launch_cycles

let test_breakdown_bit_identical () =
  let checked = ref 0 in
  List.iter (fun (job : Pipeline.job) ->
    let name = Source.name job.Pipeline.source in
    match Pipeline.compile job with
    | Error e -> Alcotest.failf "%s: %s" name (Frontend.error_message e)
    | Ok c when c.Pipeline.tiled = None -> ()
    | Ok c ->
      let _, result = Runner.simulate c in
      let smem =
        match c.Pipeline.plan with
        | Some plan ->
          Option.value ~default:0
            (Timing.plan_smem_bytes ~double_buffer:false ~word_bytes:4 plan
               Runner.zero_env)
        | None -> 0
      in
      List.iter (fun gp ->
        List.iter (fun l ->
          incr checked;
          check_breakdown name
            (Timing.gpu_launch_breakdown Config.gtx8800 gp l)
            (Timing.launch_breakdown H.gtx8800 gp l))
          result.Exec.launches)
        [ { Timing.threads = 256; smem_bytes_per_block = smem;
            coalesce_eff = 16.0; global_sync = false; double_buffer = false };
          { Timing.threads = 64; smem_bytes_per_block = 2 * smem;
            coalesce_eff = 4.0; global_sync = true; double_buffer = true } ])
    (Suite.jobs ());
  Alcotest.(check bool) "checked some launches" true (!checked > 0)

let test_total_ms_bit_identical () =
  match Pipeline.compile (Matmul.job ~n:32 ()) with
  | Error e -> Alcotest.fail (Frontend.error_message e)
  | Ok c ->
    let _, result = Runner.simulate c in
    let gp = { Timing.default_params with Timing.threads = 128 } in
    Alcotest.(check (float 0.0)) "hierarchy_total_ms = gpu_total_ms"
      (Timing.gpu_total_ms Config.gtx8800 gp result)
      (Timing.hierarchy_total_ms H.gtx8800 gp result)

(* --- cache timing: hierarchy formula = legacy core2duo constants ----- *)

let test_cache_total_ms_formula () =
  let flops = 1.0e6 and l1 = 8.0e5 and l2 = 1.5e5 and mem = 5.0e4 in
  let expected =
    ((((flops *. 2.5) +. (l1 *. 2.5)) +. (l2 *. 18.0)) +. (mem *. 165.0))
    /. (2130.0 *. 1000.0)
  in
  Alcotest.(check (float 0.0)) "legacy core2duo formula" expected
    (Timing.cache_total_ms H.core2duo_cache_as_scratchpad ~flops
       ~hits:[| l1; l2 |] ~home_accesses:mem)

(* --- JSON round-trip and the committed machine files ----------------- *)

let test_json_roundtrip () =
  List.iter (fun (name, h) ->
    match H.of_json (H.to_json h) with
    | Error e -> Alcotest.failf "%s: round-trip failed: %s" name e
    | Ok h' ->
      Alcotest.(check bool) (name ^ " round-trips") true
        (J.equal (H.to_json h) (H.to_json h')))
    H.builtins

let test_machine_files_match_builtins () =
  List.iter (fun (name, h) ->
    let path = Filename.concat machines_dir (name ^ ".json") in
    match H.of_file path with
    | Error e -> Alcotest.failf "%s: %s" path e
    | Ok h' ->
      Alcotest.(check bool) (name ^ ".json matches built-in") true
        (J.equal (H.to_json h) (H.to_json h')))
    H.builtins

let test_load_resolution () =
  (match H.load "gtx8800_3level" with
   | Ok h -> Alcotest.(check string) "builtin name" "gtx8800_3level" (H.name h)
   | Error e -> Alcotest.fail e);
  (match H.load (Filename.concat machines_dir "gtx8800.json") with
   | Ok h -> Alcotest.(check string) "file name" "gtx8800" (H.name h)
   | Error e -> Alcotest.fail e);
  match H.load "no-such-machine" with
  | Ok _ -> Alcotest.fail "unknown machine resolved"
  | Error e ->
    Alcotest.(check bool) "error lists built-ins" true
      (let contains s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       contains e "gtx8800")

let must_error label = function
  | Ok (_ : H.t) -> Alcotest.failf "%s: accepted" label
  | Error (_ : string) -> ()

let test_malformed_machines () =
  must_error "empty object" (H.of_json (J.Obj []));
  must_error "missing file" (H.of_file "/nonexistent/machine.json");
  let parse s =
    match J.of_string s with
    | Ok j -> H.of_json j
    | Error e -> Error e
  in
  must_error "not json" (H.of_file "test_hierarchy.ml");
  must_error "one level"
    (parse
       {|{"schema":"emsc-machine/1","name":"m",
          "compute":{"clock_mhz":1000,"flop_cycles":1,"simd_per_unit":1,
                     "warp_size":1,"max_blocks_per_unit":1,"sync_cycles":0,
                     "global_sync_base":0,"global_sync_per_block":0,
                     "launch_overhead_cycles":0},
          "levels":[{"name":"mem","capacity_bytes":null,"word_bytes":4,
                     "access_cycles":1,"fanout":1}]}|});
  must_error "bounded home (inner level shape in home position)"
    (parse
       {|{"schema":"emsc-machine/1","name":"m",
          "compute":{"clock_mhz":1000,"flop_cycles":1,"simd_per_unit":1,
                     "warp_size":1,"max_blocks_per_unit":1,"sync_cycles":0,
                     "global_sync_base":0,"global_sync_per_block":0,
                     "launch_overhead_cycles":0},
          "levels":[{"name":"smem","capacity_bytes":1024,"word_bytes":4,
                     "access_cycles":1,"fanout":1,
                     "to_parent":{"bw_words_per_cycle":1,"latency":1,
                                  "coalesce_width":1}},
                    {"name":"mem","capacity_bytes":4096,"word_bytes":4,
                     "access_cycles":1,"fanout":1}]}|});
  must_error "inner level without a transfer edge"
    (parse
       {|{"schema":"emsc-machine/1","name":"m",
          "compute":{"clock_mhz":1000,"flop_cycles":1,"simd_per_unit":1,
                     "warp_size":1,"max_blocks_per_unit":1,"sync_cycles":0,
                     "global_sync_base":0,"global_sync_per_block":0,
                     "launch_overhead_cycles":0},
          "levels":[{"name":"smem","capacity_bytes":1024,"word_bytes":4,
                     "access_cycles":1,"fanout":1},
                    {"name":"mem","capacity_bytes":null,"word_bytes":4,
                     "access_cycles":1,"fanout":1}]}|})

(* --- placement ------------------------------------------------------- *)

let test_placement_two_level_degenerates () =
  (* everything in smem; violation iff the total exceeds capacity —
     the legacy single-scratchpad rule *)
  let fits =
    P.place H.gtx8800
      ~footprints:[ ("l_A", "A", 2048); ("l_B", "B", 2048) ]
  in
  Alcotest.(check bool) "fits" true (P.ok fits);
  List.iter (fun (p : P.placed) ->
    Alcotest.(check string) (p.P.p_buffer ^ " at smem") "smem" p.P.p_level)
    fits.P.pl_placed;
  let over =
    P.place H.gtx8800
      ~footprints:[ ("l_A", "A", 2048); ("l_B", "B", 4096) ]
  in
  Alcotest.(check bool) "over capacity" false (P.ok over)

let test_placement_three_level_promotes () =
  (* regs hold 2048 words: the small buffers go innermost, the big one
     falls through to smem, nothing violates *)
  let t =
    P.place H.gtx8800_3level
      ~footprints:
        [ ("l_big", "A", 4000); ("l_s1", "B", 512); ("l_s2", "C", 512) ]
  in
  Alcotest.(check bool) "ok" true (P.ok t);
  let level b =
    match P.find t b with
    | Some p -> p.P.p_level
    | None -> Alcotest.failf "%s unplaced" b
  in
  Alcotest.(check string) "small 1 in regs" "regs" (level "l_s1");
  Alcotest.(check string) "small 2 in regs" "regs" (level "l_s2");
  Alcotest.(check string) "big in smem" "smem" (level "l_big")

let test_placement_double_buffer_doubles () =
  (* 2048+2048 fits single-buffered (= capacity), doubles to 8192 > 4096 *)
  let single =
    P.place H.gtx8800 ~footprints:[ ("l_A", "A", 2048); ("l_B", "B", 2048) ]
  in
  let doubled =
    P.place ~double_buffer:true H.gtx8800
      ~footprints:[ ("l_A", "A", 2048); ("l_B", "B", 2048) ]
  in
  Alcotest.(check bool) "single fits" true (P.ok single);
  Alcotest.(check bool) "doubled does not" false (P.ok doubled);
  Alcotest.(check int) "effective words doubled" 4096
    (match P.find doubled "l_A" with
     | Some p -> p.P.p_effective_words
     | None -> -1)

let test_edge_totals_cross_outward () =
  (* a buffer at level i crosses every edge from i to the home *)
  let t =
    P.place H.gtx8800_3level
      ~footprints:[ ("l_r", "A", 100); ("l_s", "B", 4000) ]
  in
  let totals =
    P.edge_totals H.gtx8800_3level t ~words_of:(fun p -> p.P.p_words)
  in
  Alcotest.(check (list (pair string int)))
    "regs buffer on both edges, smem buffer on the outer one"
    [ ("regs<-smem", 100); ("smem<-dram", 4100) ]
    totals

let test_effective_words () =
  Alcotest.(check int) "plain" 7 (H.effective_words ~double_buffer:false 7);
  Alcotest.(check int) "doubled" 14 (H.effective_words ~double_buffer:true 7);
  Alcotest.(check int) "timing alias" 14
    (Timing.effective_smem_words ~double_buffer:true 7)

let () =
  Alcotest.run "hierarchy"
    [ ( "projection",
        [ Alcotest.test_case "to_gpu = legacy gtx8800" `Quick
            test_to_gpu_matches_legacy;
          Alcotest.test_case "suite launch breakdowns bit-identical" `Quick
            test_breakdown_bit_identical;
          Alcotest.test_case "total ms bit-identical" `Quick
            test_total_ms_bit_identical;
          Alcotest.test_case "cache timing = legacy formula" `Quick
            test_cache_total_ms_formula ] );
      ( "json",
        [ Alcotest.test_case "builtins round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "machine files match builtins" `Quick
            test_machine_files_match_builtins;
          Alcotest.test_case "load resolves names and files" `Quick
            test_load_resolution;
          Alcotest.test_case "malformed descriptions rejected" `Quick
            test_malformed_machines ] );
      ( "placement",
        [ Alcotest.test_case "2-level = legacy capacity rule" `Quick
            test_placement_two_level_degenerates;
          Alcotest.test_case "3-level promotes small buffers" `Quick
            test_placement_three_level_promotes;
          Alcotest.test_case "double buffering doubles footprints" `Quick
            test_placement_double_buffer_doubles;
          Alcotest.test_case "edge totals accumulate outward" `Quick
            test_edge_totals_cross_outward;
          Alcotest.test_case "effective words rule" `Quick
            test_effective_words ] ) ]

(* lib/runtime: the block-parallel execution backend.  Bit-for-bit
   equality with the sequential interpreter (arrays, counter totals,
   launch shapes) across job counts, policies and double buffering;
   arena-pool semantics; the DMA pipeline splitter; the write-ownership
   tracker; and the double-buffer capacity rule. *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen
open Emsc_core
open Emsc_machine
open Emsc_driver
open Emsc_runtime

let compiled job =
  match Pipeline.compile job with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_message e)

let totals_json (r : Exec.result) =
  Emsc_obs.Json.to_string (Exec.counters_json r.Exec.totals)

let grids (r : Exec.result) =
  List.map (fun (l : Exec.launch) -> l.Exec.grid) r.Exec.launches

(* arrays, reduced totals and launch structure must all match exactly *)
let check_same (prog : Prog.t) (m_seq, r_seq) (m_par, r_par) =
  List.iter (fun (d : Prog.array_decl) ->
    Alcotest.(check bool)
      (d.Prog.array_name ^ " bit-identical") true
      (Memory.arrays_equal ~eps:0.0 m_seq m_par d.Prog.array_name))
    prog.Prog.arrays;
  Alcotest.(check string) "counter totals" (totals_json r_seq)
    (totals_json r_par);
  Alcotest.(check (list (float 0.0))) "launch grids" (grids r_seq)
    (grids r_par)

let simulate_seq c =
  Runner.simulate ~mode:Exec.Full ~memory:Runner.Pseudorandom c

let simulate_par ?policy ?(double_buffer = false) ~jobs c =
  Runner.simulate ~memory:Runner.Pseudorandom ~backend:(`Par jobs) ?policy
    ~double_buffer ~track_ownership:true c

(* --- parallel == sequential on real kernels ------------------------------ *)

let test_par_matches_seq_matmul () =
  let c = compiled (Emsc_kernels.Matmul.job ~n:32 ()) in
  let seq = simulate_seq c in
  check_same c.Pipeline.prog seq (simulate_par ~jobs:3 c)

let test_par_matches_seq_me () =
  let c = compiled (Emsc_kernels.Me.job ()) in
  let seq = simulate_seq c in
  check_same c.Pipeline.prog seq (simulate_par ~jobs:4 c)

let test_policies_and_double_buffer_match () =
  let c = compiled (Emsc_kernels.Matmul.job ~n:32 ()) in
  let seq = simulate_seq c in
  check_same c.Pipeline.prog seq
    (simulate_par ~policy:Runtime.Work_stealing ~jobs:4 c);
  check_same c.Pipeline.prog seq
    (simulate_par ~policy:Runtime.Static ~double_buffer:true ~jobs:4 c);
  check_same c.Pipeline.prog seq
    (simulate_par ~policy:Runtime.Work_stealing ~double_buffer:true ~jobs:2
       c)

(* job-count invariance: the barrier reduction runs in block order, so
   the totals must not depend on how blocks were spread over domains *)
let test_totals_invariant_in_jobs () =
  let c = compiled (Emsc_kernels.Me.job ()) in
  let _, r1 = simulate_par ~jobs:1 c in
  let _, r8 = simulate_par ~jobs:8 c in
  Alcotest.(check string) "-j1 == -j8 totals" (totals_json r1)
    (totals_json r8);
  Alcotest.(check (list (float 0.0))) "-j1 == -j8 grids" (grids r1)
    (grids r8)

(* multi-launch host loop with Fence-delimited movement phases: the
   overlapped stencil through Runner.execute, pipelined and not *)
let test_stencil_multi_launch () =
  let n = 1024 and steps = 16 and ts = 64 and tt = 4 in
  let prog = Emsc_kernels.Jacobi1d.program ~n ~steps in
  let k = Emsc_transform.Stencil.overlapped_1d ~n ~steps ~ts ~tt prog in
  let run ?backend ?(double_buffer = false) () =
    Runner.execute ~prog ~local_ref:k.Emsc_transform.Stencil.local_ref
      ~locals:k.Emsc_transform.Stencil.locals ~mode:Exec.Full
      ~memory:Runner.Pseudorandom ?backend ~double_buffer
      ~track_ownership:true
      ~block_words:k.Emsc_transform.Stencil.smem_words
      k.Emsc_transform.Stencil.ast
  in
  let seq = run () in
  let _, r_seq = seq in
  Alcotest.(check int) "one launch per time tile"
    k.Emsc_transform.Stencil.time_tiles
    (List.length r_seq.Exec.launches);
  check_same prog seq (run ~backend:(`Par 4) ());
  check_same prog seq (run ~backend:(`Par 4) ~double_buffer:true ())

(* --- ownership tracker --------------------------------------------------- *)

(* every block increments A[0]: a genuine cross-block write-write race
   the tracker must refuse (sequential execution happens to be
   deterministic, which is exactly why it needs a runtime check) *)
let racy_prog =
  let np = 0 in
  let w = Prog.mk_access ~array:"A" ~kind:Prog.Write ~rows:[ [ 0; 0 ] ] in
  let r = Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 0; 0 ] ] in
  let s =
    Build.stmt ~id:1 ~name:"S_racy" ~np ~depth:1 ~iter_names:[| "i" |]
      ~domain:(Build.box_domain ~np [ (0, 3) ])
      ~writes:[ w ] ~reads:[ r ]
      ~body:(w, Prog.Eadd (Prog.Eref r, Prog.Econst 1.0))
      ~beta:[ 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays = [ Build.array1 "A" 8 ~np ];
    stmts = [ s ] }

let racy_ast =
  [ Ast.Loop
      { Ast.var = "i"; lb = Ast.Const Zint.zero;
        ub = Ast.Const (Zint.of_int 3); step = Zint.one; par = Ast.Block;
        body =
          [ Ast.Stmt_call { stmt_id = 1; iter_args = [| Ast.Var "i" |] } ] } ]

let test_tracker_catches_race () =
  (* the sequential interpreter accepts it... *)
  let _, r = Runner.execute ~prog:racy_prog ~mode:Exec.Full racy_ast in
  let flops_seq = r.Exec.totals.Exec.flops in
  Alcotest.(check bool) "work happened" true (flops_seq > 0.0);
  (* ...the parallel backend with tracking must not (the offending block
     pair depends on scheduling, so only the array name is asserted) *)
  match
    Runner.execute ~prog:racy_prog ~backend:(`Par 2) ~track_ownership:true
      racy_ast
  with
  | _ -> Alcotest.fail "write-write race went undetected"
  | exception Runtime.Ownership_violation msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "violation names the array (%s)" msg)
      true
      (contains msg "A (word 0)")

let test_tracker_off_by_default () =
  (* without tracking the race executes (numerically wrong but silent):
     the backend only promises determinism for race-free plans *)
  let _, r = Runner.execute ~prog:racy_prog ~backend:(`Par 1) racy_ast in
  Alcotest.(check bool) "runs" true (r.Exec.totals.Exec.flops > 0.0)

(* --- arena pool (satellite: typed errors, peak gauge, idempotence) ------- *)

let arena_base () =
  let m = Runner.prepare ~param_env:Runner.no_params racy_prog in
  Memory.declare_local m "l_buf";
  m

let test_arena_capacity_typed_error () =
  let pool = Arena.create_pool ~capacity_words:64 ~base:(arena_base ()) () in
  (match Arena.acquire pool ~words:65 with
   | Error (Arena.Capacity_exceeded { requested_words; capacity_words }) ->
     Alcotest.(check int) "requested" 65 requested_words;
     Alcotest.(check int) "capacity" 64 capacity_words
   | Error e -> Alcotest.failf "wrong error: %s" (Arena.error_message e)
   | Ok _ -> Alcotest.fail "over-capacity acquire succeeded");
  (* a fitting request still works after the refusal *)
  match Arena.acquire pool ~words:64 with
  | Ok a -> Arena.release a
  | Error e -> Alcotest.failf "fitting acquire failed: %s" (Arena.error_message e)

let test_arena_release_idempotent_and_peak () =
  let pool = Arena.create_pool ~capacity_words:100 ~base:(arena_base ()) () in
  let a = Result.get_ok (Arena.acquire pool ~words:40) in
  let b = Result.get_ok (Arena.acquire pool ~words:40) in
  Alcotest.(check int) "two in use" 2 (Arena.in_use pool);
  Memory.write_local (Arena.memory a) "l_buf" [| 0 |] 1.0;
  Memory.write_local (Arena.memory a) "l_buf" [| 1 |] 2.0;
  Memory.write_local (Arena.memory b) "l_buf" [| 0 |] 3.0;
  Arena.release a;
  Arena.release a;  (* idempotent *)
  Alcotest.(check int) "one in use after double release" 1
    (Arena.in_use pool);
  Arena.release b;
  Alcotest.(check int) "none in use" 0 (Arena.in_use pool);
  Alcotest.(check int) "peak concurrent arenas" 2 (Arena.peak_in_use pool);
  (* the released views recorded their per-buffer peak occupancy *)
  Alcotest.(check (list (pair string int))) "peak occupancy"
    [ ("l_buf", 2) ]
    (Arena.peak_occupancy pool);
  (* recycled views come back with empty locals *)
  let c = Result.get_ok (Arena.acquire pool ~words:10) in
  Alcotest.(check int) "recycled view is clean" 0
    (Memory.local_words (Arena.memory c));
  Arena.release c

let test_arena_blocks_then_proceeds () =
  (* max_arenas 1: the second acquire must wait for the release *)
  let pool = Arena.create_pool ~max_arenas:1 ~base:(arena_base ()) () in
  let a = Result.get_ok (Arena.acquire pool ~words:1) in
  Alcotest.(check (option bool)) "try_acquire refuses while full" None
    (Option.map (fun _ -> true) (Arena.try_acquire pool ~words:1));
  Arena.release a;
  match Arena.try_acquire pool ~words:1 with
  | Some b -> Arena.release b
  | None -> Alcotest.fail "pool still full after release"

(* --- arena failure paths (satellite: transactional acquisition) ---------- *)

exception Fork_failed

(* forks happen only while the free list is empty, so holding every
   granted arena until the end makes each iteration fork anew: the
   hammer alternates injected fork failures with retries and checks the
   pool is left exactly as found after every failure (counters
   untouched, mutex released — the retry would deadlock otherwise) *)
let test_arena_fork_failure_hammer () =
  let should_fail = ref false in
  let fork m = if !should_fail then raise Fork_failed else Memory.fork_view m in
  let pool = Arena.create_pool ~fork ~base:(arena_base ()) () in
  let held = ref [] in
  for i = 1 to 20 do
    should_fail := true;
    (match Arena.acquire pool ~words:1 with
     | _ -> Alcotest.fail "acquire swallowed the fork failure"
     | exception Fork_failed -> ());
    Alcotest.(check int) "in_use untouched by failed acquire" (i - 1)
      (Arena.in_use pool);
    (match Arena.try_acquire pool ~words:1 with
     | _ -> Alcotest.fail "try_acquire swallowed the fork failure"
     | exception Fork_failed -> ());
    should_fail := false;
    match Arena.acquire pool ~words:1 with
    | Ok a -> held := a :: !held
    | Error e -> Alcotest.failf "retry failed: %s" (Arena.error_message e)
  done;
  Alcotest.(check int) "every retry granted" 20 (Arena.in_use pool);
  Alcotest.(check int) "peak counts only successes" 20
    (Arena.peak_in_use pool);
  List.iter Arena.release !held;
  Alcotest.(check int) "drained" 0 (Arena.in_use pool)

let test_arena_acquire_all_transactional () =
  let pool =
    Arena.create_pool ~capacity_words:100 ~max_arenas:4 ~base:(arena_base ())
      ()
  in
  (match Arena.acquire_all pool ~words:[ 30; 30; 30 ] with
   | Ok arenas ->
     Alcotest.(check int) "batch granted atomically" 3 (Arena.in_use pool);
     List.iter Arena.release arenas
   | Error e -> Alcotest.failf "batch refused: %s" (Arena.error_message e));
  Alcotest.(check int) "batch drained" 0 (Arena.in_use pool);
  (match Arena.acquire_all pool ~words:[ 60; 60 ] with
   | Error (Arena.Capacity_exceeded { requested_words; capacity_words }) ->
     Alcotest.(check int) "total requested" 120 requested_words;
     Alcotest.(check int) "capacity" 100 capacity_words
   | Error e -> Alcotest.failf "wrong error: %s" (Arena.error_message e)
   | Ok _ -> Alcotest.fail "over-capacity batch granted");
  match Arena.acquire_all pool ~words:[ 1; 1; 1; 1; 1 ] with
  | Error (Arena.Too_many_arenas { requested; max_arenas }) ->
    Alcotest.(check int) "requested arenas" 5 requested;
    Alcotest.(check int) "arena cap" 4 max_arenas
  | Error e -> Alcotest.failf "wrong error: %s" (Arena.error_message e)
  | Ok _ -> Alcotest.fail "batch wider than the arena cap granted"

(* a fork failure mid-batch must roll the already-granted arenas back:
   no slab leak, no peak_in_use skew, and the pool keeps working *)
let test_arena_acquire_all_rollback () =
  let calls = ref 0 in
  let fork m =
    incr calls;
    if !calls = 3 then raise Fork_failed else Memory.fork_view m
  in
  let pool = Arena.create_pool ~fork ~base:(arena_base ()) () in
  (match Arena.acquire_all pool ~words:[ 10; 10; 10 ] with
   | _ -> Alcotest.fail "acquire_all swallowed the fork failure"
   | exception Fork_failed -> ());
  Alcotest.(check int) "no slab leak" 0 (Arena.in_use pool);
  Alcotest.(check int) "no peak skew" 0 (Arena.peak_in_use pool);
  match Arena.acquire_all pool ~words:[ 10; 10 ] with
  | Ok arenas ->
    Alcotest.(check int) "rolled-back views recycle" 2 (List.length arenas);
    List.iter Arena.release arenas
  | Error e ->
    Alcotest.failf "batch after rollback failed: %s" (Arena.error_message e)

(* --- inter-tile reuse (tentpole): chained residency ----------------------- *)

let conv2d_block_job ~inter_tile_reuse () =
  let t b = { Emsc_transform.Tile.block = b; mem = None; thread = None } in
  let spec = [| t (Some 8); t (Some 8); t None; t None |] in
  Pipeline.job
    ~options:
      { Options.default with
        find_band = false; tiling = Options.Spec spec; inter_tile_reuse }
    (Source.Program
       { name = "conv2d-reuse"; prog = Emsc_kernels.Conv2d.program ~n:32 ~kw:3 })

let test_inter_tile_matches_seq_and_moves_less () =
  let c = compiled (conv2d_block_job ~inter_tile_reuse:true ()) in
  (match c.Pipeline.plan with
   | Some p ->
     Alcotest.(check bool) "plan carries reuse" true
       (List.exists (fun (b : Plan.buffered) -> b.Plan.reuse <> None)
          p.Plan.buffered)
   | None -> Alcotest.fail "no plan");
  (* residency chains with delta movement stay bit-identical to the
     sequential interpreter across job counts *)
  let seq = simulate_seq c in
  check_same c.Pipeline.prog seq (simulate_par ~jobs:1 c);
  check_same c.Pipeline.prog seq (simulate_par ~jobs:3 c);
  (* and genuinely move less: the img halo columns and the whole w
     window stay resident between consecutive j-blocks *)
  let full = compiled (conv2d_block_job ~inter_tile_reuse:false ()) in
  let _, r_full = simulate_par ~jobs:3 full in
  let _, r_delta = simulate_par ~jobs:3 c in
  Alcotest.(check bool) "delta run loads strictly less" true
    (r_delta.Exec.totals.Exec.g_ld < r_full.Exec.totals.Exec.g_ld);
  Alcotest.(check (float 0.0)) "stores unchanged"
    r_full.Exec.totals.Exec.g_st r_delta.Exec.totals.Exec.g_st

(* --- pipeline splitter --------------------------------------------------- *)

let cref a = { Ast.array = a; indices = [| Ast.Const Zint.zero |] }
let copy_in = Ast.Copy { dst = cref "l_a"; src = cref "A" }
let copy_out = Ast.Copy { dst = cref "A"; src = cref "l_a" }
let call = Ast.Stmt_call { stmt_id = 1; iter_args = [||] }

let test_pipeline_phases_split () =
  let body = [ copy_in; Ast.Fence; call; Ast.Fence; copy_out ] in
  match Runtime.pipeline_phases body with
  | Some (ins, core, outs) ->
    (* fences travel with their movement phase so the three pieces
       re-concatenate to the original body — phase counter sums equal
       the unsplit execution *)
    Alcotest.(check bool) "reconstructs" true (ins @ core @ outs = body);
    Alcotest.(check bool) "move-in non-empty" true (ins <> []);
    Alcotest.(check bool) "core is the call" true (List.mem call core);
    Alcotest.(check bool) "move-out non-empty" true (outs <> [])
  | None -> Alcotest.fail "canonical body did not split"

let test_pipeline_phases_refuses_non_canonical () =
  Alcotest.(check bool) "no fences -> no pipeline" true
    (Runtime.pipeline_phases [ copy_in; call; copy_out ] = None);
  Alcotest.(check bool) "compute before fence -> no pipeline" true
    (Runtime.pipeline_phases [ call; Ast.Fence; call ] = None)

(* --- double-buffer capacity rule (satellite 1) --------------------------- *)

let no_params _ = failwith "no parameters"

let fig1_plan () =
  Plan.plan_block ~arch:`Cell ~merge_per_array:true
    Emsc_kernels.Fig1.program

let test_effective_smem_helpers () =
  Alcotest.(check int) "single" 100
    (Timing.effective_smem_words ~double_buffer:false 100);
  Alcotest.(check int) "double" 200
    (Timing.effective_smem_words ~double_buffer:true 100);
  Alcotest.(check int) "bytes" 800
    (Timing.effective_smem_bytes ~double_buffer:true ~word_bytes:4 100)

(* a plan that fits single-buffered but not double-buffered must fail
   the capacity invariant exactly when double_buffer is set *)
let test_double_buffer_capacity_regression () =
  let plan = fig1_plan () in
  let fp = Zint.to_int_exn (Plan.total_footprint plan no_params) in
  Alcotest.(check bool) "plan has a footprint" true (fp > 0);
  let cap = (2 * fp) - 1 in
  let capacity_violations ~double_buffer =
    List.filter (fun v -> v.Emsc_check.Invariants.invariant = "capacity")
      (Emsc_check.Invariants.check ~capacity_words:cap ~double_buffer
         ~env:no_params plan)
  in
  Alcotest.(check int) "fits single-buffered" 0
    (List.length (capacity_violations ~double_buffer:false));
  Alcotest.(check int) "exceeds double-buffered" 1
    (List.length (capacity_violations ~double_buffer:true))

(* --- runtime events integration ------------------------------------------ *)

module Ev = Emsc_obs.Events
module Rr = Emsc_obs.Runtime_report

(* instrumentation must be observationally free: an events-on pipelined
   run stays bit-identical to sequential, and the report it yields is
   internally consistent (every block accounted for, measured overlap
   within the model bound) *)
let test_events_on_bit_identical_with_report () =
  let c = compiled (Emsc_kernels.Matmul.job ~n:32 ()) in
  let seq = simulate_seq c in
  let par, report =
    Runner.with_runtime_report (fun () ->
      simulate_par ~double_buffer:true ~jobs:3 c)
  in
  check_same c.Pipeline.prog seq par;
  match report with
  | None -> Alcotest.fail "instrumented parallel run produced no report"
  | Some r ->
    Alcotest.(check int) "one stat per worker domain" 3
      (List.length r.Rr.domains);
    let blocks =
      List.fold_left (fun a d -> a + d.Rr.d_blocks) 0 r.Rr.domains
    in
    let _, r_par = par in
    let grid_blocks =
      List.fold_left
        (fun a (l : Exec.launch) -> a + int_of_float l.Exec.grid)
        0 r_par.Exec.launches
    in
    Alcotest.(check int) "every block left a compute event" grid_blocks
      blocks;
    Alcotest.(check bool) "staged words were counted" true
      (r.Rr.dma_words > 0.0);
    Alcotest.(check bool) "window covers the busy time" true
      (r.Rr.window_s > 0.0 && r.Rr.compute_busy_s <= r.Rr.window_s *. 3.0);
    Alcotest.(check bool) "critical path within the window" true
      (r.Rr.critical_path_s <= r.Rr.window_s +. 1e-9);
    (* the acceptance gate: achieved overlap never exceeds the bound *)
    let a = Emsc_audit.Overlap.audit ~double_buffer:true r in
    Alcotest.(check bool) "overlap audit not failing" true
      (Emsc_audit.Overlap.ok a)

(* with recording off, the backend registers no rings at all — the
   plain (uninstrumented) path runs and nothing is drainable *)
let test_events_off_leaves_no_tracks () =
  Ev.reset ();
  Alcotest.(check bool) "events disabled" false (Ev.enabled ());
  let c = compiled (Emsc_kernels.Matmul.job ~n:16 ()) in
  let seq = simulate_seq c in
  check_same c.Pipeline.prog seq (simulate_par ~double_buffer:true ~jobs:2 c);
  Alcotest.(check int) "no tracks recorded" 0 (List.length (Ev.drain ()))

(* --- oracle backend plumbing --------------------------------------------- *)

let test_oracle_parallel_backend () =
  let c = compiled (Emsc_kernels.Matmul.job ~n:16 ()) in
  (match Emsc_check.Oracle.check_compiled ~backend:(`Par 3)
           ~param_env:Runner.no_params c
   with
   | Ok () -> ()
   | Error r -> Alcotest.failf "parallel oracle failed: %s" r)

let () =
  Alcotest.run "runtime"
    [ ( "parallel-vs-sequential",
        [ Alcotest.test_case "matmul" `Quick test_par_matches_seq_matmul;
          Alcotest.test_case "me" `Quick test_par_matches_seq_me;
          Alcotest.test_case "policies+double-buffer" `Quick
            test_policies_and_double_buffer_match;
          Alcotest.test_case "totals invariant in -j" `Quick
            test_totals_invariant_in_jobs;
          Alcotest.test_case "stencil multi-launch" `Quick
            test_stencil_multi_launch ] );
      ( "ownership",
        [ Alcotest.test_case "tracker catches race" `Quick
            test_tracker_catches_race;
          Alcotest.test_case "tracker off by default" `Quick
            test_tracker_off_by_default ] );
      ( "arena",
        [ Alcotest.test_case "typed capacity error" `Quick
            test_arena_capacity_typed_error;
          Alcotest.test_case "idempotent release + peaks" `Quick
            test_arena_release_idempotent_and_peak;
          Alcotest.test_case "occupancy cap" `Quick
            test_arena_blocks_then_proceeds;
          Alcotest.test_case "fork-failure hammer" `Quick
            test_arena_fork_failure_hammer;
          Alcotest.test_case "acquire_all transactional" `Quick
            test_arena_acquire_all_transactional;
          Alcotest.test_case "acquire_all rollback" `Quick
            test_arena_acquire_all_rollback ] );
      ( "inter-tile-reuse",
        [ Alcotest.test_case "bit-identical + strictly fewer loads" `Quick
            test_inter_tile_matches_seq_and_moves_less ] );
      ( "pipeline",
        [ Alcotest.test_case "splits canonical body" `Quick
            test_pipeline_phases_split;
          Alcotest.test_case "refuses non-canonical" `Quick
            test_pipeline_phases_refuses_non_canonical ] );
      ( "capacity",
        [ Alcotest.test_case "effective smem helpers" `Quick
            test_effective_smem_helpers;
          Alcotest.test_case "double-buffer regression" `Quick
            test_double_buffer_capacity_regression ] );
      ( "events",
        [ Alcotest.test_case "on: bit-identical + report" `Quick
            test_events_on_bit_identical_with_report;
          Alcotest.test_case "off: no tracks" `Quick
            test_events_off_leaves_no_tracks ] );
      ( "oracle",
        [ Alcotest.test_case "parallel backend" `Quick
            test_oracle_parallel_backend ] ) ]

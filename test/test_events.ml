(* Runtime event layer: ring wraparound semantics, the
   zero-cost-when-disabled discipline, the runtime-report analysis on a
   hand-built timeline, the overlap audit's asymmetric verdicts, and
   the merged compile+runtime Chrome export. *)

open Emsc_obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let with_events ?capacity f =
  Events.reset ();
  Events.enable ?capacity ();
  Fun.protect f ~finally:(fun () ->
    Events.disable ();
    Events.reset ();
    Events.use_default_clock ())

let block ~launch ~block phase = Events.Block { launch; block; phase }

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

(* a full ring overwrites the oldest events, reports how many it
   dropped, and keeps the survivors in emission order *)
let test_wraparound_drops_oldest () =
  with_events ~capacity:4 (fun () ->
    let r = Events.ring ~kind:Events.Exec_track "w" in
    for i = 0 to 6 do
      let t = float_of_int i in
      Events.emit r ~t0:t ~t1:(t +. 0.5) (block ~launch:0 ~block:i Events.Whole)
    done;
    match Events.drain () with
    | [ tr ] ->
      checki "dropped" 3 tr.Events.dropped;
      checki "surviving" 4 (List.length tr.Events.events);
      List.iteri (fun i e ->
        match e.Events.data with
        | Events.Block { block; _ } -> checki "oldest-first order" (3 + i) block
        | _ -> Alcotest.fail "unexpected event payload")
        tr.Events.events
    | trs -> Alcotest.failf "expected 1 track, got %d" (List.length trs))

let test_no_wraparound_no_drops () =
  with_events ~capacity:8 (fun () ->
    let r = Events.ring ~kind:Events.Dma_track "d" in
    for i = 0 to 7 do
      Events.emit r ~t0:0.0 ~t1:1.0
        (Events.Dma_transfer { launch = 0; block = i; dir = `In; words = 1.0 })
    done;
    match Events.drain () with
    | [ tr ] ->
      checki "no drops at exactly capacity" 0 tr.Events.dropped;
      checki "all kept" 8 (List.length tr.Events.events)
    | _ -> Alcotest.fail "expected 1 track")

(* ------------------------------------------------------------------ *)
(* Disabled: no events, no allocation                                  *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  with_events (fun () ->
    let r = Events.ring ~kind:Events.Exec_track "w" in
    Events.emit r ~t0:0.0 ~t1:1.0 (block ~launch:0 ~block:0 Events.Whole);
    Events.disable ();
    Events.emit r ~t0:2.0 ~t1:3.0 (block ~launch:0 ~block:1 Events.Whole);
    Events.enable ();
    match Events.drain () with
    | [ tr ] ->
      checki "only the enabled emit landed" 1 (List.length tr.Events.events)
    | _ -> Alcotest.fail "expected 1 track")

(* the instrumentation idiom: the event ring is resolved once (None
   when recording is off) and every emit site guards the record
   construction behind it, so a disabled run must not allocate at all
   on the hot path *)
let test_disabled_no_allocation () =
  Events.reset ();
  Events.disable ();
  let er =
    if Events.enabled () then Some (Events.ring ~kind:Events.Exec_track "na")
    else None
  in
  (* warm up so the loop's code path is settled before measuring *)
  (match er with
   | Some r when Events.enabled () ->
     Events.emit r ~t0:0.0 (block ~launch:0 ~block:0 Events.Whole)
   | _ -> ());
  let w0 = Gc.minor_words () in
  for i = 0 to 99_999 do
    match er with
    | Some r when Events.enabled () ->
      Events.emit r ~t0:0.0 (block ~launch:0 ~block:i Events.Whole)
    | _ -> ()
  done;
  let dw = Gc.minor_words () -. w0 in
  checkb (Printf.sprintf "no allocation when disabled (%.0f words)" dw) true
    (dw < 64.0)

(* ------------------------------------------------------------------ *)
(* Runtime report on a hand-built timeline                             *)
(* ------------------------------------------------------------------ *)

(* worker0: compute [0,2] and [3,5] with a DMA wait [2,3] between;
   worker1: two steal attempts, one hit, otherwise idle;
   dma0: one 100-word move-in [1,4];
   arena: occupancy 10 words then 4.
   Everything below is checked against pencil-and-paper arithmetic. *)
let synthetic_tracks () =
  let w0 = Events.ring ~kind:Events.Exec_track "worker0" in
  let w1 = Events.ring ~kind:Events.Exec_track "worker1" in
  let d0 = Events.ring ~kind:Events.Dma_track "dma0" in
  let ar = Events.ring ~kind:Events.Arena_track "arena" in
  Events.emit w0 ~t0:0.0 ~t1:2.0 (block ~launch:0 ~block:0 Events.Compute);
  Events.emit w0 ~t0:2.0 ~t1:3.0 (Events.Dma_wait { launch = 0; block = 1 });
  Events.emit w0 ~t0:3.0 ~t1:5.0 (block ~launch:0 ~block:1 Events.Compute);
  Events.emit w1 ~t0:1.0 ~t1:1.0 (Events.Steal { victim = 0; ok = true });
  Events.emit w1 ~t0:2.0 ~t1:2.0 (Events.Steal { victim = 0; ok = false });
  Events.emit d0 ~t0:1.0 ~t1:4.0
    (Events.Dma_transfer { launch = 0; block = 1; dir = `In; words = 100.0 });
  Events.emit ar ~t0:1.0 ~t1:1.0 (Events.Occupancy { words = 10; arenas = 1 });
  Events.emit ar ~t0:4.0 ~t1:4.0 (Events.Occupancy { words = 4; arenas = 1 });
  Events.drain ()

let test_report_arithmetic () =
  with_events (fun () ->
    let tracks = synthetic_tracks () in
    match Runtime_report.build tracks with
    | None -> Alcotest.fail "events present but no report"
    | Some r ->
      checkf "window" 5.0 r.Runtime_report.window_s;
      (match r.Runtime_report.domains with
       | [ d0; d1 ] ->
         checkf "worker0 busy" 4.0 d0.Runtime_report.d_busy_s;
         checkf "worker0 dma-wait" 1.0 d0.Runtime_report.d_dma_wait_s;
         checkf "worker0 idle" 0.0 d0.Runtime_report.d_idle_s;
         checki "worker0 blocks" 2 d0.Runtime_report.d_blocks;
         checkf "worker1 idle" 5.0 d1.Runtime_report.d_idle_s;
         checki "worker1 attempts" 2 d1.Runtime_report.d_steal_attempts;
         checki "worker1 hits" 1 d1.Runtime_report.d_steal_hits
       | ds -> Alcotest.failf "expected 2 domains, got %d" (List.length ds));
      checkf "compute busy (union)" 4.0 r.Runtime_report.compute_busy_s;
      checkf "dma busy" 3.0 r.Runtime_report.dma_busy_s;
      checkf "dma words" 100.0 r.Runtime_report.dma_words;
      (* [1,4] ∩ ([0,2] ∪ [3,5]) = [1,2] ∪ [3,4] *)
      checkf "overlap" 2.0 r.Runtime_report.overlap_s;
      checkf "overlap fraction" (2.0 /. 3.0)
        r.Runtime_report.overlap_fraction;
      checki "occupancy samples" 2 (List.length r.Runtime_report.occupancy);
      checki "peak words" 10 r.Runtime_report.occupancy_peak_words;
      checki "peak arenas" 1 r.Runtime_report.occupancy_peak_arenas;
      (* one launch; block 1's envelope spans its DMA [1,4], wait [2,3]
         and compute [3,5] -> [1,5], longer than block 0's [0,2] *)
      checkf "critical path" 4.0 r.Runtime_report.critical_path_s;
      checki "no drops" 0 r.Runtime_report.dropped_events)

let test_report_none_without_events () =
  with_events (fun () ->
    let _ = Events.ring ~kind:Events.Exec_track "w" in
    checkb "no events -> no report" true
      (Runtime_report.build (Events.drain ()) = None))

(* ------------------------------------------------------------------ *)
(* Overlap audit verdicts                                              *)
(* ------------------------------------------------------------------ *)

module O = Emsc_audit.Overlap
module A = Emsc_audit.Audit

(* a report skeleton for verdict cases that real interval data cannot
   produce (measured overlap is a true intersection, so it can only
   exceed the bound if the accounting itself is broken) *)
let fake_report ~compute ~dma ~fraction =
  { Runtime_report.window_s = 10.0; domains = [];
    compute_busy_s = compute; dma_busy_s = dma; dma_words = 1.0;
    overlap_s = fraction *. dma; overlap_fraction = fraction;
    occupancy = []; occupancy_peak_words = 0; occupancy_peak_arenas = 0;
    critical_path_s = 1.0; dropped_events = 0 }

let test_audit_verdicts () =
  (* consistent measurement under the bound: pass *)
  let pass = O.audit ~double_buffer:false
      (fake_report ~compute:4.0 ~dma:3.0 ~fraction:0.66)
  in
  checkb "pass" true (pass.O.o_verdict = A.Pass && O.ok pass);
  checkf "bound is min(1, compute/dma)" 1.0 pass.O.o_bound;
  (* measured overlap above the model upper bound: the accounting is
     unsound and the audit must fail *)
  let fail = O.audit ~double_buffer:true
      (fake_report ~compute:0.5 ~dma:1.0 ~fraction:0.9)
  in
  checkf "tight bound" 0.5 fail.O.o_bound;
  checkb "fail above bound" true (fail.O.o_verdict = A.Fail && not (O.ok fail));
  (* within tolerance of the bound: still a pass *)
  let near = O.audit ~tolerance:0.05 ~double_buffer:false
      (fake_report ~compute:0.5 ~dma:1.0 ~fraction:0.54)
  in
  checkb "tolerance absorbs skew" true (near.O.o_verdict = A.Pass);
  (* double buffering that achieved almost none of the promised
     overlap: warn, never fail (1-core CI is the expected cause) *)
  let warn = O.audit ~double_buffer:true
      (fake_report ~compute:4.0 ~dma:3.0 ~fraction:0.01)
  in
  checkb "db shortfall warns" true (warn.O.o_verdict = A.Warn && O.ok warn);
  (* same shortfall without double buffering requested: nothing was
     promised, so pass *)
  let nodb = O.audit ~double_buffer:false
      (fake_report ~compute:4.0 ~dma:3.0 ~fraction:0.01)
  in
  checkb "no-db shortfall passes" true (nodb.O.o_verdict = A.Pass);
  (* no DMA at all: vacuous pass with an explanatory note *)
  let vac = O.audit ~double_buffer:true
      (fake_report ~compute:4.0 ~dma:0.0 ~fraction:0.0)
  in
  checkb "vacuous pass" true (vac.O.o_verdict = A.Pass);
  checkb "vacuous note" true (vac.O.o_notes <> []);
  (* the JSON rendering carries the verdict for bench-compare *)
  (match Json.member "verdict" (O.json fail) with
   | Some (Json.Str "fail") -> ()
   | _ -> Alcotest.fail "json verdict missing")

(* ------------------------------------------------------------------ *)
(* Merged Chrome export                                                *)
(* ------------------------------------------------------------------ *)

let trace_events j =
  match Json.member "traceEvents" j with
  | Some l -> Json.to_list l
  | None -> Alcotest.fail "no traceEvents"

let pid_of ev =
  match Json.member "pid" ev with Some (Json.Int p) -> p | _ -> -1

let test_merged_chrome () =
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    (fun () ->
      Trace.span "compile" (fun () -> ());
      with_events (fun () ->
        let _ = synthetic_tracks () in
        let evs = trace_events (Events.merged_chrome_json ()) in
        checkb "has compile events (pid 1)" true
          (List.exists (fun e -> pid_of e = 1) evs);
        checkb "has runtime events (pid 2)" true
          (List.exists (fun e -> pid_of e = 2) evs);
        (* every runtime track is announced as a named thread *)
        let thread_names =
          List.filter_map (fun e ->
            if Json.member "name" e = Some (Json.Str "thread_name")
            && pid_of e = 2
            then
              match Json.member "args" e with
              | Some a ->
                (match Json.member "name" a with
                 | Some (Json.Str n) -> Some n
                 | _ -> None)
              | None -> None
            else None)
            evs
        in
        List.iter (fun n ->
          checkb (n ^ " track present") true (List.mem n thread_names))
          [ "worker0"; "worker1"; "dma0"; "arena" ];
        (* event payloads keep their identity in the lane names *)
        let names =
          List.filter_map (fun e ->
            match Json.member "name" e, Json.member "ph" e with
            | Some (Json.Str n), Some (Json.Str "X") -> Some n
            | _ -> None)
            evs
        in
        List.iter (fun n ->
          checkb (n ^ " event present") true (List.mem n names))
          [ "compute"; "dma-in"; "dma-wait"; "steal"; "steal-miss";
            "occupancy" ]);
      (* with the runtime rings drained away, the merged export reduces
         to exactly the compile-only document *)
      Events.reset ();
      let merged = Json.to_string (Events.merged_chrome_json ()) in
      let compile_only =
        Json.to_string
          (Json.Obj
             [ ("traceEvents",
                Json.List (trace_events (Trace.chrome_json ())));
               ("displayTimeUnit", Json.Str "ms") ])
      in
      Alcotest.(check string) "events-off export is compile-only" compile_only
        merged)

let () =
  Alcotest.run "events"
    [ ( "ring",
        [ Alcotest.test_case "wraparound drops oldest" `Quick
            test_wraparound_drops_oldest;
          Alcotest.test_case "exact capacity keeps all" `Quick
            test_no_wraparound_no_drops ] );
      ( "disabled",
        [ Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "no allocation" `Quick
            test_disabled_no_allocation ] );
      ( "report",
        [ Alcotest.test_case "arithmetic" `Quick test_report_arithmetic;
          Alcotest.test_case "none without events" `Quick
            test_report_none_without_events ] );
      ( "audit",
        [ Alcotest.test_case "verdicts" `Quick test_audit_verdicts ] );
      ( "chrome",
        [ Alcotest.test_case "merged export" `Quick test_merged_chrome ] ) ]

(* Benchmark harness: regenerates every figure of the paper's
   evaluation (Section 6) on the simulated GeForce 8800 GTX + Core2 Duo
   testbed, plus Bechamel micro-benchmarks of the compiler passes.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig4    -- one artifact
     dune exec bench/main.exe -- micro   -- compiler-pass microbenches
     dune exec bench/main.exe -- batch   -- kernel-suite batch compile

   Every compilation goes through the Emsc_driver pipeline with a
   shared in-memory pass cache, so a tile configuration planned for
   one figure is not re-planned for the next.

   Absolute milliseconds come from a first-order machine model (see
   DESIGN.md); the claims under test are the *shapes*: who wins, by
   what rough factor, and where the optima/crossovers sit. *)

open Emsc_arith
open Emsc_ir
open Emsc_core
open Emsc_transform
open Emsc_machine
open Emsc_kernels
open Emsc_driver

let gpu_hier = Emsc_machine.Hierarchy.gtx8800
let gpu = Emsc_machine.Hierarchy.to_gpu_exn gpu_hier
let cpu_hier = Emsc_machine.Hierarchy.core2duo_cache_as_scratchpad

(* CPU-baseline ms for a run: cache-simulate the hierarchy's cache
   levels and charge per-level hits through the timing model *)
let cpu_baseline_ms run =
  let module Sim = Emsc_machine.Cache.Sim in
  let sim = Sim.create cpu_hier in
  let on_global _ addr _ = ignore (Sim.access sim addr) in
  let (c : Exec.counters) = run ~on_global in
  Timing.cache_total_ms cpu_hier ~flops:c.Exec.flops
    ~hits:(Sim.hits sim)
    ~home_accesses:(Sim.home_accesses sim)

let pf = Printf.printf

let human n =
  if n >= 1 lsl 30 then Printf.sprintf "%dG" (n lsr 30)
  else if n >= 1 lsl 20 then Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1 lsl 10 then Printf.sprintf "%dk" (n lsr 10)
  else string_of_int n

(* one pass cache for the whole harness: figures that revisit a
   (kernel, tile) configuration reuse its dependences and plan *)
let bench_cache = Emsc_driver.Cache.in_memory ()

let compiled job =
  match Pipeline.compile ~cache:bench_cache job with
  | Ok c -> c
  | Error e -> failwith ("bench: " ^ Frontend.error_message e)

let compile_text ?(options = Options.default) name text =
  compiled (Pipeline.job ~options (Source.Text { name; text }))

let plan_of c =
  match c.Pipeline.plan with
  | Some plan -> plan
  | None -> failwith "bench: compilation carries no plan"

(* ------------------------------------------------------------------ *)
(* Machine-readable run metrics: every figure records its data points  *)
(* here and the harness writes a BENCH_<timestamp>.json artifact, so   *)
(* successive PRs have a perf trajectory to regress against.           *)
(* ------------------------------------------------------------------ *)

module J = Emsc_obs.Json

let bench_points : J.t list ref = ref []
let bench_notes : J.t list ref = ref []

(* runtime figure: flat "<kernel>.<series>" -> wall ms; becomes the
   artifact's top-level [runtime_wall_ms] key (what bench-compare's
   runtime section gates) *)
let runtime_wall : (string * float) list ref = ref []

(* per-kernel runtime report from one extra events-on double-buffered
   run (untimed, so instrumentation never pollutes runtime_wall_ms),
   each with its nested overlap audit; becomes the artifact's
   top-level [runtime_report] object — what bench-compare's
   overlap-fail gate reads *)
let runtime_reports : (string * J.t) list ref = ref []

let record_point ~fig ~series ~x ?(unit_ = "ms") v =
  bench_points :=
    J.Obj
      [ ("figure", J.Str fig); ("series", J.Str series); ("x", J.Str x);
        ("value", J.Float v); ("unit", J.Str unit_) ]
    :: !bench_points

let record_note ~fig name v =
  bench_notes :=
    J.Obj [ ("figure", J.Str fig); ("name", J.Str name); ("value", v) ]
    :: !bench_notes

(* per-kernel counter totals, accumulated over every simulated run *)
let kernel_counters : (string, Exec.counters) Hashtbl.t = Hashtbl.create 8

let note_counters kernel (c : Exec.counters) =
  let acc =
    match Hashtbl.find_opt kernel_counters kernel with
    | Some a -> a
    | None ->
      let a = Exec.fresh () in
      Hashtbl.replace kernel_counters kernel a;
      a
  in
  acc.Exec.flops <- acc.Exec.flops +. c.Exec.flops;
  acc.Exec.g_ld <- acc.Exec.g_ld +. c.Exec.g_ld;
  acc.Exec.g_st <- acc.Exec.g_st +. c.Exec.g_st;
  acc.Exec.s_ld <- acc.Exec.s_ld +. c.Exec.s_ld;
  acc.Exec.s_st <- acc.Exec.s_st +. c.Exec.s_st;
  acc.Exec.syncs <- acc.Exec.syncs +. c.Exec.syncs;
  acc.Exec.fences <- acc.Exec.fences +. c.Exec.fences

(* cost-model audit rows (one per suite kernel), in suite order *)
let audit_results : J.t list ref = ref []

(* hierarchy figure: "<kernel>.<machine>.<edge>" -> measured words
   moved across that transfer edge; becomes the artifact's top-level
   [level_movement] key (what bench-compare's level_words section
   gates) *)
let level_movement : (string * float) list ref = ref []

(* inter-tile figure: "<kernel>.<full|delta>" (and per-buffer
   breakdowns) -> measured movement words; becomes the artifact's
   top-level [transfer_volume] key (what bench-compare's
   transfer_words section gates) *)
let transfer_volume : (string * float) list ref = ref []

(* serve figure: latency quantiles, throughput and cache hit rates of
   the compile daemon under concurrent load; becomes the artifact's
   top-level [serve] object — bench-compare gates its lower-is-better
   keys (latency quantiles, hot miss rate) with the runtime
   tolerance *)
let serve_summary : (string * J.t) list ref = ref []

let write_bench_json ~figure_ms =
  let t = Unix.localtime (Unix.time ()) in
  let stamp fmt =
    Printf.sprintf fmt (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
      t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec
  in
  let path = stamp "BENCH_%04d%02d%02d_%02d%02d%02d.json" in
  let kernels =
    Hashtbl.fold (fun k c acc -> (k, Exec.counters_json c) :: acc)
      kernel_counters []
    |> List.sort compare
  in
  let j =
    J.Obj
      [ ("schema", J.Str "emsc-bench/1");
        ("timestamp", J.Str (stamp "%04d-%02d-%02dT%02d:%02d:%02d"));
        ("figures", J.List (List.rev !bench_points));
        ("notes", J.List (List.rev !bench_notes));
        ("kernel_counters", J.Obj kernels);
        ( "figure_wall_ms",
          J.Obj (List.map (fun (n, ms) -> (n, J.Float ms)) figure_ms) );
        ( "runtime_wall_ms",
          J.Obj
            (List.rev_map (fun (k, ms) -> (k, J.Float ms)) !runtime_wall) );
        ("runtime_report", J.Obj (List.rev !runtime_reports));
        ("audit", J.List (List.rev !audit_results));
        ( "level_movement",
          J.Obj
            (List.rev_map (fun (k, w) -> (k, J.Float w)) !level_movement) );
        ( "transfer_volume",
          J.Obj
            (List.rev_map (fun (k, w) -> (k, J.Float w)) !transfer_volume) );
        ("serve", J.Obj !serve_summary);
        ("metrics", Emsc_obs.Metrics.snapshot_json (Emsc_obs.Metrics.snapshot ()));
        ( "pass_cache",
          Emsc_driver.Cache.stats_json bench_cache );
        ("pass_timings", Emsc_obs.Trace.aggregate_json ());
        (* per-pass self times with caller stacks; bench-compare uses
           this to attribute a wall regression to the offending pass *)
        ("compile_profile", Emsc_obs.Prof.json (Emsc_obs.Prof.snapshot ())) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:true j);
      output_char oc '\n');
  pf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Mpeg4 motion estimation                                            *)
(* ------------------------------------------------------------------ *)

let ws = 16
let me_threads = 256

type me_run = {
  me_ms : float;
  me_fp_bytes : int;
}

let run_me ~ni ~nj ~tiles ~smem =
  let c = compiled (Me.job ~ni ~nj ~ws ~tiles ~stage_data:smem ()) in
  let _, result = Runner.simulate c in
  note_counters "me" result.Exec.totals;
  let fp_words =
    if smem then
      Zint.to_int_exn (Plan.total_footprint (plan_of c) Runner.zero_env)
    else 0
  in
  let fp_bytes =
    Timing.effective_smem_bytes ~double_buffer:false
      ~word_bytes:gpu.Config.word_bytes fp_words
  in
  let params =
    { Timing.threads = me_threads;
      smem_bytes_per_block = fp_bytes;
      (* staged copies are aligned and fully coalesced; the sliding
         window accesses of the unstaged version mostly are not
         (G80 alignment rules) *)
      coalesce_eff = (if smem then 16.0 else 4.0);
      global_sync = false; double_buffer = false }
  in
  { me_ms = Timing.gpu_total_ms gpu params result;
    me_fp_bytes = fp_bytes }

(* CPU baseline: full interpretation with cache simulation at a small
   frame, extrapolated linearly in the operation count (the kernel
   streams, so per-op cache behaviour is size-independent). *)
let me_cpu_ms_per_op =
  lazy
    begin
      let ni = 96 and nj = 96 in
      let p = Me.program ~ni ~nj ~ws in
      let spec = Array.make 4 Tile.no_tiling in
      let ast = Tile.generate p spec ~movement:[] in
      let ms =
        cpu_baseline_ms (fun ~on_global ->
          let _, r = Runner.execute ~prog:p ~mode:Exec.Full ~on_global ast in
          r.Exec.totals)
      in
      ms /. float_of_int (ni * nj * ws * ws)
    end

let me_cpu_ms ~ni ~nj =
  Lazy.force me_cpu_ms_per_op *. float_of_int ni *. float_of_int nj
  *. float_of_int (ws * ws)

let me_sizes =
  (* labelled as in the paper; square frames *)
  [ ("256k", 512); ("1M", 1024); ("2M", 1448); ("4M", 2048); ("9M", 3072);
    ("16M", 4096); ("64M", 8192) ]

let best_me_tiles = (32, 16, 16, 16)

let fig4 () =
  pf "=== Figure 4: Mpeg4 ME execution time (ms) vs problem size ===\n";
  pf "%-8s %14s %14s %14s %10s %9s\n" "size" "GPU-noSmem" "GPU-smem" "CPU"
    "no/smem" "cpu/smem";
  List.iter (fun (label, n) ->
    let dram = run_me ~ni:n ~nj:n ~tiles:best_me_tiles ~smem:false in
    let sm = run_me ~ni:n ~nj:n ~tiles:best_me_tiles ~smem:true in
    let c = me_cpu_ms ~ni:n ~nj:n in
    record_point ~fig:"fig4" ~series:"gpu-dram" ~x:label dram.me_ms;
    record_point ~fig:"fig4" ~series:"gpu-smem" ~x:label sm.me_ms;
    record_point ~fig:"fig4" ~series:"cpu" ~x:label c;
    pf "%-8s %14.1f %14.1f %14.1f %9.1fx %8.0fx\n" label dram.me_ms sm.me_ms c
      (dram.me_ms /. sm.me_ms) (c /. sm.me_ms))
    me_sizes;
  pf "(paper: scratchpad ~8x over DRAM-only; >100x over CPU)\n\n"

let me_tile_candidates =
  [ (8, 8, 16, 16); (16, 8, 16, 16); (16, 16, 16, 16); (32, 16, 16, 16);
    (32, 32, 16, 16); (64, 16, 16, 16) ]

let fig6 () =
  pf "=== Figure 6: Mpeg4 ME time (ms) for varying memory-tile sizes ===\n";
  let sizes = List.filter (fun (_, n) -> n >= 2048) me_sizes in
  pf "%-14s" "tile";
  List.iter (fun (label, _) -> pf " %10s" label) sizes;
  pf " %11s\n" "smem/block";
  List.iter (fun (ti, tj, tk, tl) ->
    pf "%2d,%2d,%2d,%2d    " ti tj tk tl;
    let tile_s = Printf.sprintf "%d,%d,%d,%d" ti tj tk tl in
    let fp = ref 0 in
    List.iter (fun (label, n) ->
      let r = run_me ~ni:n ~nj:n ~tiles:(ti, tj, tk, tl) ~smem:true in
      fp := r.me_fp_bytes;
      record_point ~fig:"fig6" ~series:tile_s ~x:label r.me_ms;
      pf " %10.1f" r.me_ms)
      sizes;
    pf " %10dB%s\n" !fp
      (if !fp > gpu.Config.smem_bytes then "  <- exceeds 16KB" else ""))
    me_tile_candidates;
  (* and what does the Section 4.3 search pick?  Run it as the
     pipeline's tilesearch stage. *)
  let ni = 2048 and nj = 2048 in
  let search =
    { Options.search_block =
        [| Some ((ni + 7) / 8); Some ((nj + 3) / 4); None; None |];
      search_ranges = [| (8, 64); (8, 64); (16, 16); (16, 16) |];
      search_mem_limit_words =
        Emsc_machine.Hierarchy.staging_capacity_words gpu_hier;
      search_threads = float_of_int me_threads;
      search_sync_cost = 40.0;
      search_transfer_cost = 4.0;
      search_max_evals = 60;
      search_snap_pow2 = true }
  in
  let c =
    compiled
      (Pipeline.job
         ~options:
           { Options.default with
             arch = `Gpu; find_band = false;
             tiling = Options.Search search }
         (Source.Program
            { name = Printf.sprintf "me-%dx%d-search" ni nj;
              prog = Me.program ~ni ~nj ~ws }))
  in
  (match c.Pipeline.searched with
   | Some cand ->
     let tiles =
       String.concat ","
         (Array.to_list (Array.map string_of_int cand.Tilesearch.t))
     in
     record_note ~fig:"fig6" "search_pick"
       (J.Obj
          [ ("tiles", J.Str tiles);
            ("footprint_words", J.Int cand.Tilesearch.footprint) ]);
     pf "tile-size search picks (%s), footprint %d words\n" tiles
       cand.Tilesearch.footprint
   | None ->
     record_note ~fig:"fig6" "search_pick" J.Null;
     pf "tile-size search found nothing feasible\n");
  pf "(paper: 32,16,16,16 optimal and found by the search)\n\n"

(* ------------------------------------------------------------------ *)
(* 1-D Jacobi                                                          *)
(* ------------------------------------------------------------------ *)

let jac_steps = 4096
let jac_threads = 64

let run_jacobi ~n ~ts ~tt =
  let p = Jacobi1d.program ~n ~steps:jac_steps in
  let k = Stencil.overlapped_1d ~n ~steps:jac_steps ~ts ~tt p in
  let _, result =
    Runner.execute ~prog:p ~local_ref:k.Stencil.local_ref
      ~locals:k.Stencil.locals ~memory:Runner.Phantom k.Stencil.ast
  in
  note_counters "jacobi1d" result.Exec.totals;
  let params =
    { Timing.threads = jac_threads;
      smem_bytes_per_block =
        Timing.effective_smem_bytes ~double_buffer:false
          ~word_bytes:gpu.Config.word_bytes k.Stencil.smem_words;
      coalesce_eff = 16.0;
      global_sync = true; double_buffer = false }
  in
  Timing.gpu_total_ms gpu params result

let run_jacobi_dram ~n ~ts =
  let p = Jacobi1d.program ~n ~steps:jac_steps in
  let k = Stencil.dram_1d ~n ~steps:jac_steps ~ts p in
  let _, result =
    Runner.execute ~prog:p ~memory:Runner.Phantom k.Stencil.ast
  in
  note_counters "jacobi1d" result.Exec.totals;
  let params =
    { Timing.threads = jac_threads; smem_bytes_per_block = 0;
      coalesce_eff = 3.5; global_sync = true; double_buffer = false }
  in
  Timing.gpu_total_ms gpu params result

let jac_cpu_ms_per_cell =
  lazy
    begin
      let n = 8192 and steps = 32 in
      let p = Jacobi1d.program ~n ~steps in
      let ms =
        cpu_baseline_ms (fun ~on_global ->
          let _, c = Runner.reference ~on_global p in
          c)
      in
      ms /. (float_of_int n *. float_of_int steps)
    end

let jac_cpu_ms ~n =
  Lazy.force jac_cpu_ms_per_cell *. float_of_int n *. float_of_int jac_steps

let fig5_sizes = [ 8192; 16384; 32768; 65536; 131072; 262144; 524288 ]

let fig5 () =
  pf "=== Figure 5: 1-D Jacobi execution time (ms) vs problem size ===\n";
  pf "%-8s %14s %14s %14s %10s %9s\n" "size" "GPU-noSmem" "GPU-smem" "CPU"
    "no/smem" "cpu/smem";
  List.iter (fun n ->
    let ts = 256 in
    let sm = run_jacobi ~n ~ts ~tt:32 in
    let dram = run_jacobi_dram ~n ~ts in
    let c = jac_cpu_ms ~n in
    record_point ~fig:"fig5" ~series:"gpu-dram" ~x:(human n) dram;
    record_point ~fig:"fig5" ~series:"gpu-smem" ~x:(human n) sm;
    record_point ~fig:"fig5" ~series:"cpu" ~x:(human n) c;
    pf "%-8s %14.1f %14.1f %14.1f %9.1fx %8.1fx\n" (human n) dram sm c
      (dram /. sm) (c /. sm))
    fig5_sizes;
  pf "(paper: scratchpad ~10x over DRAM-only; ~15x over CPU)\n\n"

let fig7 () =
  pf "=== Figure 7: 1-D Jacobi time (ms) vs number of thread blocks ===\n";
  let block_counts = [ 32; 64; 96; 128; 160; 192; 224; 256 ] in
  pf "%-8s" "blocks";
  List.iter (fun n -> pf " %12s" ("N=" ^ human n)) [ 8192; 16384; 32768 ];
  pf "\n";
  List.iter (fun b ->
    pf "%-8d" b;
    List.iter (fun n ->
      let ts = max 4 ((n - 2 + b - 1) / b) in
      let ms = run_jacobi ~n ~ts ~tt:32 in
      record_point ~fig:"fig7" ~series:("N=" ^ human n) ~x:(string_of_int b)
        ms;
      pf " %12.2f" ms)
      [ 8192; 16384; 32768 ];
    pf "\n")
    block_counts;
  pf "(paper: U-shaped curves; synchronization dominates at high block counts)\n\n"

let jac_tile_candidates =
  [ (32, 64); (32, 128); (16, 256); (32, 256); (64, 256) ]

let fig8 () =
  pf "=== Figure 8: 1-D Jacobi time (ms) for varying (time,space) tiles ===\n";
  let sizes = [ 65536; 131072; 262144; 524288 ] in
  pf "%-10s" "tt,ts";
  List.iter (fun n -> pf " %12s" (human n)) sizes;
  pf "\n";
  List.iter (fun (tt, ts) ->
    pf "%3d,%-5d " tt ts;
    List.iter (fun n ->
      let ms = run_jacobi ~n ~ts ~tt in
      record_point ~fig:"fig8"
        ~series:(Printf.sprintf "%d,%d" tt ts) ~x:(human n) ms;
      pf " %12.1f" ms)
      sizes;
    pf "\n")
    jac_tile_candidates;
  (* the Section 4.3 search over (tt, ts), scratchpad limited as in the
     paper's experiment (2^9 words per buffer -> 2^10 words here since
     the ping-pong keeps two buffers; see EXPERIMENTS.md).  This one
     cannot go through the pipeline's tilesearch stage: its objective
     is simulated execution time of the overlapped stencil kernel, not
     the movement-cost model. *)
  let limit_words = 1024 in
  let problem =
    { Tilesearch.ranges = [| (8, 128); (32, 512) |];
      mem_limit_words = limit_words;
      threads = float_of_int jac_threads;
      sync_cost = 2.0;
      transfer_cost = 8.0;
      evaluate =
        (fun t ->
          let tt = t.(0) and ts = t.(1) in
          if tt <= 0 || ts <= 0 then None
          else Some (run_jacobi ~n:131072 ~ts ~tt, 2 * (ts + (2 * tt)))) }
  in
  (match Tilesearch.search ~max_evals:80 ~snap_pow2:true problem with
   | Some c ->
     record_note ~fig:"fig8" "search_pick"
       (J.Obj
          [ ("tt", J.Int c.Tilesearch.t.(0));
            ("ts", J.Int c.Tilesearch.t.(1));
            ("footprint_words", J.Int c.Tilesearch.footprint) ]);
     pf "tile-size search picks tt=%d, ts=%d (footprint %d words)\n"
       c.Tilesearch.t.(0) c.Tilesearch.t.(1) c.Tilesearch.footprint
   | None ->
     record_note ~fig:"fig8" "search_pick" J.Null;
     pf "tile-size search found nothing feasible\n");
  pf "(paper: space tile 256, time tile 32 optimal and found by the search)\n\n"

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out                       *)
(* ------------------------------------------------------------------ *)

let ablations () =
  pf "=== Ablations ===\n";
  (* 1. Section 3.1.4 movement optimizer: producer-consumer block *)
  let src =
    {|
    array A[64];
    array C[64];
    for (i = 0; i <= 63; i++) { A[i] = i * 2; }
    for (i = 0; i <= 63; i++) { C[i] = A[i] + 1; }
    |}
  in
  let copies plan =
    List.fold_left (fun acc (b : Plan.buffered) ->
      let count stms =
        let n = ref 0 in
        let rec walk s =
          match s with
          | Emsc_codegen.Ast.Loop l -> List.iter walk l.Emsc_codegen.Ast.body
          | Emsc_codegen.Ast.Guard (_, body) -> List.iter walk body
          | Emsc_codegen.Ast.Copy _ -> incr n
          | _ -> ()
        in
        List.iter walk stms;
        !n
      in
      acc + count b.Plan.move_in)
      0 plan.Plan.buffered
  in
  let cell_opts = { Options.default with arch = `Cell; find_band = false } in
  let c_naive = compile_text ~options:cell_opts "producer-consumer" src in
  let c_opt =
    compile_text
      ~options:{ cell_opts with optimize_movement = true }
      "producer-consumer" src
  in
  let naive = plan_of c_naive and opt = plan_of c_opt in
  record_note ~fig:"ablations" "move_in_nests"
    (J.Obj [ ("naive", J.Int (copies naive)); ("optimized", J.Int (copies opt)) ]);
  pf "3.1.4 movement optimizer: move-in loop nests %d -> %d\n"
    (copies naive) (copies opt);
  (* the A partition needs nothing moved in when the producer is in
     the block; verify via the data sets *)
  let p = c_naive.Pipeline.prog in
  let deps = Option.get c_naive.Pipeline.deps in
  let part_a = List.hd (Dataspaces.partition_array p "A") in
  let buf = Alloc.build p part_a in
  let needed = Movement.optimized_move_in_data p deps buf in
  pf "  elements of A needing copy-in: %s (naive: 64)\n"
    (match Emsc_poly.Count.count_uset needed with
     | Emsc_poly.Count.Exact n -> Zint.to_string n
     | _ -> "?");

  (* 2. Section 4.2 hoisting: occurrences with and without *)
  let mm = Matmul.program ~n:64 in
  let spec =
    [| { Tile.block = Some 16; mem = None; thread = None };
       { Tile.block = Some 16; mem = None; thread = None };
       { Tile.block = None; mem = Some 8; thread = None } |]
  in
  let c_mm =
    compiled
      (Pipeline.job
         ~options:
           { Options.default with
             arch = `Cell; find_band = false; tiling = Options.Spec spec }
         (Source.Program { name = "matmul-n64-hoist"; prog = mm }))
  in
  let plan = plan_of c_mm in
  let naive_occ = 8.0 (* innermost placement: once per kM sub-tile *) in
  List.iter (fun (bf : Plan.buffered) ->
    let occ =
      Tile.movement_profile mm spec (bf.Plan.move_in, bf.Plan.move_out)
    in
    pf "4.2 hoisting, buffer %s: %.0f movement occurrences per block         (unhoisted: %.0f)\n"
      bf.Plan.buffer.Alloc.local_name occ naive_occ)
    plan.Plan.buffered;

  (* 3. double-buffered staging (overlap movement with compute) *)
  let run_me_db ~double =
    let ni = 2048 and nj = 2048 in
    let c = compiled (Me.job ~ni ~nj ~ws ~tiles:(32, 16, 16, 16) ()) in
    let plan = plan_of c in
    let _, r = Runner.simulate c in
    let fp =
      match
        Timing.plan_smem_bytes ~double_buffer:double
          ~word_bytes:gpu.Config.word_bytes plan Runner.zero_env
      with
      | Some b -> b
      | None -> failwith "bench: symbolic footprint"
    in
    Timing.gpu_total_ms gpu
      { Timing.threads = me_threads;
        smem_bytes_per_block = fp;
        coalesce_eff = 16.0; global_sync = false; double_buffer = double }
      r
  in
  let t_single = run_me_db ~double:false in
  let t_double = run_me_db ~double:true in
  record_note ~fig:"ablations" "double_buffer_ms"
    (J.Obj [ ("single", J.Float t_single); ("double", J.Float t_double) ]);
  pf "double buffering (ME, 4M): %.1f ms -> %.1f ms (%.1f%%), at 2x       scratchpad\n"
    t_single t_double
    ((t_single -. t_double) /. t_single *. 100.0);

  (* 4. Algorithm 1 threshold sweep on a constant-reuse block *)
  let src2 =
    {|
    array X[64][64];
    array Y[64][64];
    for (i = 0; i <= 62; i++) {
      for (j = 0; j <= 62; j++) {
        Y[i][j] = X[i][j] + X[i+1][j+1];
      }
    }
    |}
  in
  let c2 =
    compile_text
      ~options:{ Options.default with stop = Options.Front_end }
      "constant-reuse" src2
  in
  let p2 = c2.Pipeline.prog in
  let part = List.hd (Dataspaces.partition_array p2 "X") in
  List.iter (fun delta ->
    let r = Reuse.analyze ~delta p2 part in
    record_note ~fig:"ablations" (Printf.sprintf "delta_%.2f" delta)
      (J.Obj
         [ ( "overlap",
             match r.Reuse.overlap_fraction with
             | Some f -> J.Float f
             | None -> J.Null );
           ("beneficial", J.Bool r.Reuse.beneficial) ]);
    pf "Algorithm 1, delta=%.2f: overlap=%s -> %s\n" delta
      (match r.Reuse.overlap_fraction with
       | Some f -> Printf.sprintf "%.2f" f
       | None -> "n/a")
      (if r.Reuse.beneficial then "copy to scratchpad" else "leave in DRAM"))
    [ 0.1; 0.3; 0.5; 0.9; 0.99 ];
  pf "\n"

(* ------------------------------------------------------------------ *)
(* Batch compilation of the kernel suite                               *)
(* ------------------------------------------------------------------ *)

let batch () =
  pf "=== Kernel-suite batch compilation (driver) ===\n";
  let jobs = Suite.jobs () in
  let n = List.length jobs in
  let check label results =
    List.iter
      (function
        | Ok _ -> ()
        | Error e ->
          failwith
            (Printf.sprintf "bench: batch(%s): %s" label
               (Frontend.error_message e)))
      results
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let seq, t_seq =
    time (fun () ->
      Pipeline.compile_many ~cache:Emsc_driver.Cache.off ~jobs:1 jobs)
  in
  check "sequential" seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-bench-cache-%d" (Unix.getpid ()))
  in
  let cache = Emsc_driver.Cache.create ~dir () in
  let par, t_par =
    time (fun () -> Pipeline.compile_many ~cache ~jobs:4 jobs)
  in
  check "parallel" par;
  let warm, t_warm =
    time (fun () -> Pipeline.compile_many ~cache ~jobs:4 jobs)
  in
  check "warm-cache" warm;
  record_point ~fig:"batch" ~series:"sequential" ~x:(string_of_int n) t_seq;
  record_point ~fig:"batch" ~series:"parallel-4" ~x:(string_of_int n) t_par;
  record_point ~fig:"batch" ~series:"warm-cache" ~x:(string_of_int n) t_warm;
  record_note ~fig:"batch" "kernels"
    (J.List (List.map (fun s -> J.Str s) (Suite.names ())));
  (* the speedup of the 4-worker run is bounded by the host's cores *)
  record_note ~fig:"batch" "host_jobs" (J.Int (Pipeline.default_jobs ()));
  pf "%d kernels: sequential %.1f ms, 4 workers %.1f ms (%.1fx, %d core(s)), warm cache %.1f ms\n\n"
    n t_seq t_par (t_seq /. t_par) (Pipeline.default_jobs ()) t_warm

(* ------------------------------------------------------------------ *)
(* Differential-testing health: a small fixed-seed fuzz run            *)
(* ------------------------------------------------------------------ *)

let check () =
  pf "=== Differential testing (emsc check, fuzz=10 seed=1) ===\n";
  let t0 = Unix.gettimeofday () in
  let r = Emsc_check.Fuzz.run ~fuzz:10 ~seed:1 () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  record_point ~fig:"check" ~series:"wall" ~x:"fuzz-10" ms;
  record_point ~fig:"check" ~series:"checks" ~x:"fuzz-10" ~unit_:"count"
    (float_of_int r.Emsc_check.Fuzz.checks);
  record_note ~fig:"check" "failures"
    (J.Int (List.length r.Emsc_check.Fuzz.failures));
  pf "%d generated, %d suite kernel(s), %d check(s), %d failure(s), %.1f ms\n\n"
    r.Emsc_check.Fuzz.generated r.Emsc_check.Fuzz.suite
    r.Emsc_check.Fuzz.checks
    (List.length r.Emsc_check.Fuzz.failures)
    ms;
  if r.Emsc_check.Fuzz.failures <> [] then
    failwith "bench: check artifact found failures"

(* ------------------------------------------------------------------ *)
(* Cost-model audit: predicted vs measured over the kernel suite       *)
(* ------------------------------------------------------------------ *)

let audit () =
  pf "=== Cost-model audit (emsc audit --suite) ===\n";
  let module A = Emsc_audit.Audit in
  let failures = ref 0 in
  List.iter (fun (job : Pipeline.job) ->
    let name = Source.name job.Pipeline.source in
    let o = A.audit_job ~cache:bench_cache job in
    audit_results := A.outcome_json ~name o :: !audit_results;
    (match o with
     | A.Audited t ->
       if t.A.a_verdict = A.Fail then incr failures;
       pf "%-24s %-4s  worst %s\n" name
         (A.verdict_string t.A.a_verdict)
         (match t.A.a_worst with
          | Some w -> Printf.sprintf "%s %+.3f" w.A.q_name w.A.q_rel_err
          | None -> "-")
     | A.Skipped reason -> pf "%-24s skip  (%s)\n" name reason
     | A.Failed reason ->
       incr failures;
       pf "%-24s FAIL  (%s)\n" name reason))
    (Suite.jobs ());
  pf "\n";
  if !failures > 0 then failwith "bench: cost-model audit found failures"

(* ------------------------------------------------------------------ *)
(* Parallel runtime backend: sequential vs block-parallel wall time    *)
(* ------------------------------------------------------------------ *)

let record_runtime ~kernel ~series ms =
  runtime_wall := (kernel ^ "." ^ series, ms) :: !runtime_wall;
  record_point ~fig:"runtime" ~series:kernel ~x:series ms

(* one events-on run per kernel, outside the timed series: build the
   runtime report, audit achieved overlap against the model bound, and
   fail the whole bench on an unsound accounting (achieved above the
   bound) — a Warn (host couldn't deliver the overlap, e.g. 1-core CI)
   is recorded but does not fail *)
let record_runtime_report ~kernel run =
  let module O = Emsc_audit.Overlap in
  let _, report = Runner.with_runtime_report run in
  match report with
  | None -> failwith ("bench: runtime: " ^ kernel ^ " produced no events")
  | Some r ->
    let a = O.audit ~double_buffer:true r in
    let fields =
      match Emsc_obs.Runtime_report.to_json r with
      | J.Obj fs -> fs @ [ ("overlap_audit", O.json a) ]
      | j -> [ ("report", j); ("overlap_audit", O.json a) ]
    in
    runtime_reports := (kernel, J.Obj fields) :: !runtime_reports;
    pf "%-12s %-10s overlap %.2f of bound %.2f  (%s)\n" kernel "report"
      a.O.o_achieved a.O.o_bound
      (Emsc_audit.Audit.verdict_string a.O.o_verdict);
    if not (O.ok a) then
      failwith
        ("bench: runtime: " ^ kernel
       ^ " overlap audit failed (measured overlap above the model bound)")

let runtime_jobs () =
  let cap =
    match Sys.getenv_opt "EMSC_BENCH_RUNTIME_MAX_J" with
    | Some s -> (try max 1 (int_of_string s) with _ -> 8)
    | None -> 8
  in
  List.filter (fun j -> j <= cap) [ 1; 2; 4; 8 ]

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let totals_str (r : Exec.result) =
  J.to_string (Exec.counters_json r.Exec.totals)

(* bit-for-bit: every global array equal, counter totals identical *)
let assert_matches ~kernel ~series (prog : Prog.t) (m_seq, r_seq)
    (m_par, r_par) =
  List.iter (fun (d : Prog.array_decl) ->
    if not (Memory.arrays_equal ~eps:0.0 m_seq m_par d.Prog.array_name)
    then
      failwith
        (Printf.sprintf "bench: runtime: %s %s diverges from sequential on %s"
           kernel series d.Prog.array_name))
    prog.Prog.arrays;
  let js = totals_str r_seq and jp = totals_str r_par in
  if js <> jp then
    failwith
      (Printf.sprintf
         "bench: runtime: %s %s counter totals diverge: %s vs %s" kernel
         series jp js)

let runtime_compiled ~kernel job =
  let c = compiled job in
  let prog = c.Pipeline.prog in
  let (seq, seq_ms) =
    time_run (fun () ->
      Runner.simulate ~mode:Exec.Full ~memory:Runner.Pseudorandom c)
  in
  record_runtime ~kernel ~series:"seq" seq_ms;
  pf "%-12s %-10s %10.1f ms\n" kernel "seq" seq_ms;
  List.iter (fun j ->
    let series = Printf.sprintf "par-j%d" j in
    let (par, ms) =
      time_run (fun () ->
        Runner.simulate ~memory:Runner.Pseudorandom ~backend:(`Par j) c)
    in
    assert_matches ~kernel ~series prog seq par;
    record_runtime ~kernel ~series ms;
    pf "%-12s %-10s %10.1f ms  (%.2fx, bit-identical)\n" kernel series ms
      (seq_ms /. ms))
    (runtime_jobs ());
  (* one work-stealing and one pipelined (double-buffered DMA) point at
     the widest domain count, same equality requirement *)
  let jmax = List.fold_left max 1 (runtime_jobs ()) in
  List.iter (fun (series, policy, double_buffer) ->
    let (par, ms) =
      time_run (fun () ->
        Runner.simulate ~memory:Runner.Pseudorandom ~backend:(`Par jmax)
          ~policy ~double_buffer c)
    in
    assert_matches ~kernel ~series prog seq par;
    record_runtime ~kernel ~series ms;
    pf "%-12s %-10s %10.1f ms  (%.2fx, bit-identical)\n" kernel series ms
      (seq_ms /. ms))
    [ (Printf.sprintf "steal-j%d" jmax, Emsc_runtime.Runtime.Work_stealing,
       false);
      (Printf.sprintf "db-j%d" jmax, Emsc_runtime.Runtime.Static, true) ];
  record_runtime_report ~kernel (fun () ->
    Runner.simulate ~memory:Runner.Pseudorandom ~backend:(`Par jmax)
      ~double_buffer:true c)

(* the overlapped stencil goes through Runner.execute: a host time loop
   of block-parallel launches with a global barrier between time tiles,
   and real Fence-delimited movement phases for the DMA pipeline *)
let runtime_stencil ~kernel ~n ~steps ~ts ~tt =
  let prog = Jacobi1d.program ~n ~steps in
  let k = Stencil.overlapped_1d ~n ~steps ~ts ~tt prog in
  let run ?backend ?double_buffer () =
    Runner.execute ~prog ~local_ref:k.Stencil.local_ref
      ~locals:k.Stencil.locals ~mode:Exec.Full ~memory:Runner.Pseudorandom
      ?backend ?double_buffer ~block_words:k.Stencil.smem_words
      k.Stencil.ast
  in
  let (seq, seq_ms) = time_run (fun () -> run ()) in
  record_runtime ~kernel ~series:"seq" seq_ms;
  pf "%-12s %-10s %10.1f ms  (%d launches)\n" kernel "seq" seq_ms
    k.Stencil.time_tiles;
  List.iter (fun j ->
    List.iter (fun (tag, double_buffer) ->
      let series = Printf.sprintf "%s-j%d" tag j in
      let (par, ms) =
        time_run (fun () -> run ~backend:(`Par j) ~double_buffer ())
      in
      assert_matches ~kernel ~series prog seq par;
      record_runtime ~kernel ~series ms;
      pf "%-12s %-10s %10.1f ms  (%.2fx, bit-identical)\n" kernel series ms
        (seq_ms /. ms))
      [ ("par", false); ("db", true) ])
    (runtime_jobs ());
  let jmax = List.fold_left max 1 (runtime_jobs ()) in
  record_runtime_report ~kernel (fun () ->
    run ~backend:(`Par jmax) ~double_buffer:true ())

let runtime () =
  pf "=== Runtime backend: sequential vs block-parallel (wall ms) ===\n";
  record_note ~fig:"runtime" "host_cores" (J.Int (Pipeline.default_jobs ()));
  record_note ~fig:"runtime" "jobs"
    (J.List (List.map (fun j -> J.Int j) (runtime_jobs ())));
  runtime_compiled ~kernel:"me-128" (Me.job ~ni:128 ~nj:128 ~ws:8 ());
  runtime_compiled ~kernel:"matmul-96" (Matmul.job ~n:96 ());
  runtime_stencil ~kernel:"jacobi-16k" ~n:16384 ~steps:64 ~ts:256 ~tt:8;
  pf
    "(speedup is bounded by the host's cores — %d here; every parallel \
     point is checked bit-identical to sequential)\n\n"
    (Pipeline.default_jobs ())

(* ------------------------------------------------------------------ *)
(* N-level hierarchy: per-edge movement under 2- vs 3-level placement  *)
(* ------------------------------------------------------------------ *)

(* One Full-fidelity run per kernel measures the per-buffer DMA words
   (machine-independent: the generated movement code is the same);
   each machine then aggregates those words over its own placement.
   On the 2-level gtx8800 every buffer sits in smem, so the single
   smem<-dram edge carries everything; the 3-level variant promotes
   small buffers to the register file, and the same traffic shows up
   on both the regs<-smem and smem<-dram edges of their paths. *)
let hierarchy () =
  pf "=== Hierarchy: per-edge movement, 2-level vs 3-level placement ===\n";
  let module H = Emsc_machine.Hierarchy in
  let module P = Emsc_machine.Placement in
  let module M = Emsc_obs.Metrics in
  let machines = [ H.gtx8800; H.gtx8800_3level ] in
  let kernels =
    [ ("matmul-96", Matmul.job ~n:96 ()); ("conv2d", Conv2d.job ()) ]
  in
  List.iter (fun (kernel, job) ->
    let c = compiled job in
    let plan = plan_of c in
    let snap0 = M.snapshot () in
    let _, result = Runner.simulate ~mode:Exec.Full c in
    let measured = M.diff snap0 (M.snapshot ()) in
    note_counters kernel result.Exec.totals;
    let moved (p : P.placed) =
      let labels = [ ("buffer", p.P.p_buffer) ] in
      int_of_float
        (M.counter_value ~labels measured "exec.move_in_words"
         +. M.counter_value ~labels measured "exec.move_out_words")
    in
    List.iter (fun hier ->
      let placement = P.of_plan hier plan Runner.zero_env in
      if not (P.ok placement) then
        failwith
          (Printf.sprintf "bench: hierarchy: %s does not fit on %s" kernel
             (H.name hier));
      List.iter (fun (edge, words) ->
        let key =
          Printf.sprintf "%s.%s.%s" kernel (H.name hier) edge
        in
        level_movement := (key, float_of_int words) :: !level_movement;
        record_point ~fig:"hierarchy" ~series:(H.name hier ^ "." ^ edge)
          ~x:kernel ~unit_:"words" (float_of_int words);
        pf "%-12s %-28s %-12s %10d words\n" kernel (H.name hier) edge words)
        (P.edge_totals hier placement ~words_of:moved);
      List.iter (fun (p : P.placed) ->
        pf "%-12s %-28s   %s <- %s at %s (%d words)\n" kernel (H.name hier)
          p.P.p_buffer p.P.p_array p.P.p_level p.P.p_words)
        placement.P.pl_placed)
      machines)
    kernels;
  pf "(identical generated movement; the 3-level machine splits it \
      across its edge path)\n\n"

(* ------------------------------------------------------------------ *)
(* Inter-tile reuse: full vs delta transfer volume                     *)
(* ------------------------------------------------------------------ *)

(* The same kernel, same block tiling, compiled twice: once with full
   per-block movement, once with --inter-tile-reuse delta movement.
   Both runs execute Full-fidelity on pseudorandom memory and must
   leave bit-identical arrays; the measured per-buffer movement words
   prove the transfer-volume drop.  Each delta compilation is also
   pushed through the cost-model audit, whose reuse section gates
   "delta never moves more than the redundant counterfactual". *)
let inter_tile () =
  pf "=== Inter-tile reuse: measured transfer volume, full vs delta ===\n";
  let module M = Emsc_obs.Metrics in
  let module A = Emsc_audit.Audit in
  let t b = { Tile.block = b; mem = None; thread = None } in
  let stencil1d_src =
    {|
    array nxt[1024];
    array cur[1026];
    for (i = 0; i <= 1023; i++) {
      nxt[i] = (cur[i] + cur[i+1] + cur[i+2]) / 3;
    }
    |}
  in
  (* (kernel, source, block-only tile spec, stencil?).  Stencil-class
     kernels (sliding-window reads) must show a strict drop; matmul's
     innermost-origin footprints are disjoint per block for C and
     origin-invariant for A, so delta <= full still holds *)
  let kernels =
    [ ( "stencil1d",
        Source.Text { name = "stencil1d-1k"; text = stencil1d_src },
        [| t (Some 64) |], true );
      ( "conv2d",
        Source.Program
          { name = "conv2d-reuse"; prog = Conv2d.program ~n:32 ~kw:3 },
        [| t (Some 8); t (Some 8); t None; t None |], true );
      ( "me",
        Source.Program
          { name = "me-reuse"; prog = Me.program ~ni:32 ~nj:32 ~ws:8 },
        [| t (Some 8); t (Some 8); t None; t None |], true );
      ( "matmul",
        Source.Program { name = "matmul-reuse"; prog = Matmul.program ~n:32 },
        [| t (Some 8); t (Some 8); t None |], false ) ]
  in
  pf "%-10s %12s %12s %9s\n" "kernel" "full" "delta" "saved";
  List.iter (fun (kernel, source, spec, stencil) ->
    let job reuse =
      Pipeline.job
        ~options:
          { Options.default with
            arch = `Cell; find_band = false;
            tiling = Options.Spec spec; inter_tile_reuse = reuse }
        source
    in
    let run c =
      let plan = plan_of c in
      let snap0 = M.snapshot () in
      let m, result =
        Runner.simulate ~mode:Exec.Full ~memory:Runner.Pseudorandom c
      in
      let measured = M.diff snap0 (M.snapshot ()) in
      note_counters ("intertile-" ^ kernel) result.Exec.totals;
      let per_buffer =
        List.map (fun (b : Plan.buffered) ->
          let name = b.Plan.buffer.Alloc.local_name in
          let labels = [ ("buffer", name) ] in
          ( name,
            M.counter_value ~labels measured "exec.move_in_words"
            +. M.counter_value ~labels measured "exec.move_out_words" ))
          plan.Plan.buffered
      in
      (m, List.fold_left (fun a (_, w) -> a +. w) 0.0 per_buffer, per_buffer)
    in
    let c_full = compiled (job false) in
    let c_delta = compiled (job true) in
    (match plan_of c_delta with
     | plan when List.exists (fun (b : Plan.buffered) -> b.Plan.reuse <> None)
                   plan.Plan.buffered -> ()
     | _ -> failwith ("bench: inter_tile: " ^ kernel ^ " planned no reuse"));
    let m_full, w_full, per_full = run c_full in
    let m_delta, w_delta, per_delta = run c_delta in
    (* same program, same pseudorandom init: residency must not change
       the arrays at all *)
    List.iter (fun (d : Prog.array_decl) ->
      if not (Memory.arrays_equal ~eps:0.0 m_full m_delta d.Prog.array_name)
      then
        failwith
          (Printf.sprintf "bench: inter_tile: %s diverges on %s" kernel
             d.Prog.array_name))
      c_full.Pipeline.prog.Prog.arrays;
    if w_delta > w_full then
      failwith
        (Printf.sprintf
           "bench: inter_tile: %s delta movement (%.0f) exceeds full (%.0f)"
           kernel w_delta w_full);
    if stencil && not (w_delta < w_full) then
      failwith
        (Printf.sprintf
           "bench: inter_tile: stencil %s shows no transfer-volume drop \
            (full %.0f, delta %.0f)"
           kernel w_full w_delta);
    transfer_volume := (kernel ^ ".full", w_full)
                       :: (kernel ^ ".delta", w_delta) :: !transfer_volume;
    List.iter (fun (b, w) ->
      transfer_volume :=
        (Printf.sprintf "%s.full.%s" kernel b, w) :: !transfer_volume)
      per_full;
    List.iter (fun (b, w) ->
      transfer_volume :=
        (Printf.sprintf "%s.delta.%s" kernel b, w) :: !transfer_volume)
      per_delta;
    record_point ~fig:"inter_tile" ~series:"full" ~x:kernel ~unit_:"words"
      w_full;
    record_point ~fig:"inter_tile" ~series:"delta" ~x:kernel ~unit_:"words"
      w_delta;
    pf "%-10s %12.0f %12.0f %8.1f%%\n" kernel w_full w_delta
      ((w_full -. w_delta) /. Float.max 1.0 w_full *. 100.0);
    (* per-buffer audit: predictions stay sound under delta movement,
       and no reuse buffer moves more than the redundant counterfactual *)
    match A.audit_job ~cache:bench_cache (job true) with
    | A.Audited a ->
      audit_results := A.outcome_json ~name:("intertile-" ^ kernel) (A.Audited a)
                       :: !audit_results;
      List.iter (fun (g : A.reuse_group) ->
        pf "  %-24s redundant %10.0f  irredundant %10.0f  (saved %.1f%%)\n"
          g.A.r_buffer g.A.r_redundant g.A.r_irredundant
          ((g.A.r_redundant -. g.A.r_irredundant)
           /. Float.max 1.0 g.A.r_redundant *. 100.0))
        a.A.a_reuse;
      if a.A.a_verdict = A.Fail then
        failwith ("bench: inter_tile: audit failed on " ^ kernel)
    | A.Skipped r | A.Failed r ->
      failwith ("bench: inter_tile: audit did not run on " ^ kernel ^ ": " ^ r))
    kernels;
  pf "(delta mode must never move more; stencils must move strictly less)\n\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler passes                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let fig1 = Fig1.program in
  let t_partition =
    Test.make ~name:"dataspaces+partition(fig1)"
      (Staged.stage (fun () -> ignore (Dataspaces.partition_all fig1)))
  in
  let t_deps =
    Test.make ~name:"dependence-analysis(fig1)"
      (Staged.stage (fun () -> ignore (Deps.analyze fig1)))
  in
  let mm = Matmul.program ~n:16 in
  let mm_deps = Deps.analyze mm in
  let t_band =
    Test.make ~name:"hyperplane-band(matmul)"
      (Staged.stage (fun () -> ignore (Hyperplanes.find_band mm mm_deps)))
  in
  (* end-to-end pipeline, cold vs warm pass cache *)
  let t_pipeline_cold =
    Test.make ~name:"driver-pipeline-cold(fig1)"
      (Staged.stage (fun () ->
         match Pipeline.compile ~cache:Emsc_driver.Cache.off (Fig1.job ()) with
         | Ok _ -> ()
         | Error e -> failwith (Frontend.error_message e)))
  in
  let t_tile_cold =
    Test.make ~name:"driver-tile+plan-cold(matmul)"
      (Staged.stage (fun () ->
         match
           Pipeline.compile ~cache:Emsc_driver.Cache.off (Matmul.job ~n:16 ())
         with
         | Ok _ -> ()
         | Error e -> failwith (Frontend.error_message e)))
  in
  let warm = Emsc_driver.Cache.in_memory () in
  let t_tile_warm =
    Test.make ~name:"driver-tile+plan-warm(matmul)"
      (Staged.stage (fun () ->
         match Pipeline.compile ~cache:warm (Matmul.job ~n:16 ()) with
         | Ok _ -> ()
         | Error e -> failwith (Frontend.error_message e)))
  in
  let tests =
    Test.make_grouped ~name:"compiler-passes"
      [ t_partition; t_deps; t_band; t_pipeline_cold; t_tile_cold;
        t_tile_warm ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  pf "=== Compiler-pass micro-benchmarks (monotonic clock) ===\n";
  Hashtbl.iter (fun _ tbl ->
    Hashtbl.iter (fun name res ->
      match Analyze.OLS.estimates res with
      | Some [ est ] ->
        record_point ~fig:"micro" ~series:name ~x:"ols" ~unit_:"ns/run" est;
        pf "%-44s %14.0f ns/run\n" name est
      | Some _ | None -> pf "%-44s %14s\n" name "n/a")
      tbl)
    merged;
  pf "\n"

(* --- serve: compile-daemon latency SLO ---------------------------- *)

(* Load-test `emsc serve` in-process: one daemon domain over a shared
   two-layer pass cache (LRU-capped memory in front of a scratch disk
   dir), hammered by concurrent client connections issuing block-tiled
   matmul compiles.  Each of the distinct sources is compiled once
   cold and then repeatedly warm, so the figure measures exactly what
   a developer loop sees: cold-compile latency at the tail, hot-cache
   latency at the median. *)

let serve_sources =
  List.init 8 (fun i ->
    let n = 16 + (8 * i) in
    let name = Printf.sprintf "serve-mm%d" n in
    let text =
      Printf.sprintf
        "array A[%d][%d];\narray B[%d][%d];\narray C[%d][%d];\n\
         for (i = 0; i <= %d; i++) {\n\
        \  for (j = 0; j <= %d; j++) {\n\
        \    for (k = 0; k <= %d; k++) {\n\
        \      C[i][j] += A[i][k] * B[k][j];\n\
        \    }\n\
        \  }\n\
         }\n"
        n n n n n n (n - 1) (n - 1) (n - 1)
    in
    (name, text))

let serve_options =
  { Emsc_serve.Protocol.default_options with
    o_block = [ 8; 8; 0 ]; o_mem = [ 8; 8; 8 ] }

let serve_fig () =
  let module SP = Emsc_serve.Protocol in
  let module SC = Emsc_serve.Client in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-serve-bench-%d.sock" (Unix.getpid ()))
  in
  let disk_dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "emsc-serve-bench-cache-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  (* a cap below the working set forces evictions, so warm requests
     also exercise the disk layer (hit-after-evict) *)
  let cache = Emsc_driver.Cache.create ~dir:disk_dir ~max_entries:16 () in
  let workers = max 2 (min 4 (Pipeline.default_jobs ())) in
  let cfg =
    Emsc_serve.Server.config ~workers ~queue_capacity:256 ~cache
      (`Unix sock)
  in
  let srv = Domain.spawn (fun () -> Emsc_serve.Server.run cfg) in
  let n_clients = 4 and rounds = 3 in
  let client ci =
    match SC.connect (`Unix sock) with
    | Error m -> failwith ("serve bench: connect: " ^ m)
    | Ok conn ->
      let lats = ref [] in
      for round = 0 to rounds - 1 do
        List.iteri
          (fun i (name, text) ->
            let req =
              { SP.req_id = Printf.sprintf "c%d-r%d-%d" ci round i;
                op = SP.Compile { name; text; options = serve_options };
                timeout_ms = None }
            in
            let t0 = Unix.gettimeofday () in
            match SC.roundtrip conn req with
            | Ok resp when resp.SC.ok ->
              lats := (Unix.gettimeofday () -. t0) *. 1000.0 :: !lats
            | Ok resp ->
              failwith
                (Printf.sprintf "serve bench: %s rejected: %s" name
                   (match resp.SC.error with
                    | Some r -> r.SP.code ^ ": " ^ r.SP.message
                    | None -> "?"))
            | Error m -> failwith ("serve bench: " ^ m))
          serve_sources
      done;
      SC.close conn;
      !lats
  in
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init n_clients (fun ci -> Domain.spawn (fun () -> client ci))
  in
  let lats = List.concat_map Domain.join doms in
  let wall_s = Unix.gettimeofday () -. t0 in
  (match
     SC.once (`Unix sock)
       { SP.req_id = "bye"; op = SP.Shutdown; timeout_ms = None }
   with
   | Ok _ -> ()
   | Error m -> pf "serve: shutdown: %s\n" m);
  let stats = Domain.join srv in
  let sorted = Array.of_list (List.sort compare lats) in
  let total = Array.length sorted in
  if total = 0 then failwith "serve bench: no latencies";
  let q p =
    sorted.(min (total - 1) (int_of_float (p *. float_of_int total)))
  in
  let mean = Array.fold_left ( +. ) 0.0 sorted /. float_of_int total in
  let throughput = float_of_int total /. wall_s in
  let lookups =
    Emsc_driver.Cache.hits cache + Emsc_driver.Cache.misses cache
  in
  let rate n = if lookups = 0 then 0.0 else float_of_int n /. float_of_int lookups in
  let hot_hit = rate (Emsc_driver.Cache.hot_hits cache) in
  let disk_hit = rate (Emsc_driver.Cache.disk_hits cache) in
  record_point ~fig:"serve" ~series:"latency" ~x:"p50" (q 0.50);
  record_point ~fig:"serve" ~series:"latency" ~x:"p95" (q 0.95);
  record_point ~fig:"serve" ~series:"latency" ~x:"p99" (q 0.99);
  record_point ~fig:"serve" ~series:"throughput" ~x:"total" ~unit_:"req/s"
    throughput;
  record_note ~fig:"serve" "requests" (J.Int total);
  record_note ~fig:"serve" "served" (J.Int stats.Emsc_serve.Server.served);
  record_note ~fig:"serve" "evictions"
    (J.Int (Emsc_driver.Cache.evictions cache));
  serve_summary :=
    [ ("p50_ms", J.Float (q 0.50));
      ("p95_ms", J.Float (q 0.95));
      ("p99_ms", J.Float (q 0.99));
      ("mean_ms", J.Float mean);
      ("throughput_rps", J.Float throughput);
      ("requests", J.Int total);
      ("clients", J.Int n_clients);
      ("workers", J.Int workers);
      ("hot_hit_rate", J.Float hot_hit);
      ("hot_miss_rate", J.Float (1.0 -. hot_hit));
      ("disk_hit_rate", J.Float disk_hit);
      ("evictions", J.Int (Emsc_driver.Cache.evictions cache)) ];
  pf
    "=== serve: %d requests over %d clients x %d workers ===\n\
     p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  %.1f req/s\n\
     hot hit rate %.2f  disk hit rate %.2f  evictions %d\n\n"
    total n_clients workers (q 0.50) (q 0.95) (q 0.99) throughput hot_hit
    disk_hit
    (Emsc_driver.Cache.evictions cache)

(* ------------------------------------------------------------------ *)

let all_figs =
  [ ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("ablations", ablations); ("batch", batch);
    ("check", check); ("audit", audit); ("runtime", runtime);
    ("hierarchy", hierarchy); ("inter_tile", inter_tile);
    ("serve", serve_fig); ("micro", micro) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst all_figs
  in
  (* pass timings in the artifact come from the tracing layer; counter
     totals (pass cache, exec movement, fuzz progress) from the
     metrics registry; per-pass self times with caller attribution
     from the self-profiler *)
  Emsc_obs.Trace.enable ();
  Emsc_obs.Metrics.enable ();
  Emsc_obs.Prof.enable ();
  let figure_ms =
    List.filter_map (fun name ->
      match List.assoc_opt name all_figs with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ();
        Some (name, (Unix.gettimeofday () -. t0) *. 1000.0)
      | None ->
        pf "unknown artifact %s\n" name;
        None)
      requested
  in
  write_bench_json ~figure_ms
